#include "obs/http_admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/contention.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "core/site.h"
#include "obs/journey.h"
#include "obs/profiler.h"

namespace obiwan::obs {

namespace {

// Parse "host:port", ":port" or "port" into the port number; the host part
// is ignored (the admin socket always binds INADDR_ANY).
Result<std::uint16_t> ParsePort(const std::string& addr) {
  std::string_view port_str = addr;
  if (auto colon = addr.rfind(':'); colon != std::string::npos) {
    port_str = std::string_view(addr).substr(colon + 1);
  }
  unsigned value = 0;
  auto [ptr, ec] = std::from_chars(port_str.data(),
                                   port_str.data() + port_str.size(), value);
  if (ec != std::errc() || ptr != port_str.data() + port_str.size() ||
      value > 65535) {
    return InvalidArgumentError("bad admin address '" + addr + "'");
  }
  return static_cast<std::uint16_t>(value);
}

// Apply the remaining request budget as a socket send/receive timeout, so a
// stalled peer unblocks the serving thread with EAGAIN instead of wedging it.
void SetSocketBudget(int fd, int what, Nanos remaining) {
  if (remaining < kMilli) remaining = kMilli;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(remaining / kSecond);
  tv.tv_usec = static_cast<suseconds_t>((remaining % kSecond) / kMicro);
  ::setsockopt(fd, SOL_SOCKET, what, &tv, sizeof(tv));
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Value of the first `name:` header in the request head, "" when absent.
// Header names are case-insensitive per RFC 9110; values keep their case.
std::string HeaderValue(const std::string& head, std::string_view name) {
  std::size_t pos = head.find('\n');  // skip the request line
  while (pos != std::string::npos && pos + 1 < head.size()) {
    const std::size_t start = pos + 1;
    std::size_t end = head.find('\n', start);
    std::string_view line(head.data() + start,
                          (end == std::string::npos ? head.size() : end) -
                              start);
    if (line.size() > name.size() && line[name.size()] == ':') {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view value = line.substr(name.size() + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.remove_prefix(1);
        }
        while (!value.empty() &&
               (value.back() == '\r' || value.back() == ' ')) {
          value.remove_suffix(1);
        }
        return std::string(value);
      }
    }
    pos = end;
  }
  return "";
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default:  return "Internal Server Error";
  }
}

}  // namespace

Result<std::unique_ptr<HttpAdminServer>> HttpAdminServer::Create(
    const std::string& addr) {
  return Create(addr, Options{});
}

Result<std::unique_ptr<HttpAdminServer>> HttpAdminServer::Create(
    const std::string& addr, Options options) {
  OBIWAN_ASSIGN_OR_RETURN(std::uint16_t port, ParsePort(addr));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("admin socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status status = InternalError("admin bind " + addr + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = InternalError(std::string("admin listen: ") +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      Status status = InternalError(std::string("admin getsockname: ") +
                                    std::strerror(errno));
      ::close(fd);
      return status;
    }
    port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<HttpAdminServer>(
      new HttpAdminServer(fd, port, options));
}

HttpAdminServer::HttpAdminServer(int listen_fd, std::uint16_t port,
                                 Options options)
    : listen_fd_(listen_fd), port_(port), options_(options) {
  auto& registry = MetricsRegistry::Default();
  MetricLabels labels{{"inst", std::to_string(MetricsRegistry::NextInstance())}};
  requests_ = &registry.GetCounter("obiwan_admin_http_requests_total", labels,
                                   "Admin HTTP requests served");
  errors_ = &registry.GetCounter("obiwan_admin_http_errors_total", labels,
                                 "Admin HTTP requests answered with >= 400");
  active_ = &registry.GetGauge("obiwan_admin_http_active", labels,
                               "Admin HTTP connections being handled");
}

HttpAdminServer::~HttpAdminServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpAdminServer::Route(const std::string& path, HttpHandler handler) {
  Route(path, HttpRequestHandler([handler = std::move(handler)](
                  const HttpRequest&) { return handler(); }));
}

void HttpAdminServer::Route(const std::string& path,
                            HttpRequestHandler handler) {
  std::lock_guard lock(mutex_);
  routes_[path] = std::move(handler);
}

Status HttpAdminServer::Start() {
  if (running_.exchange(true)) return Status::Ok();
  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void HttpAdminServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept(); the loop sees running_ == false and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (serve_thread_.joinable()) serve_thread_.join();
}

std::string HttpAdminServer::address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void HttpAdminServer::ServeLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_relaxed)) break;
      // Transient accept failure (EMFILE etc.) — keep serving.
      continue;
    }
    active_->Add(1);
    HandleConnection(fd);
    active_->Add(-1);
    ::close(fd);
  }
}

void HttpAdminServer::HandleConnection(int fd) {
  SetSocketBudget(fd, SO_RCVTIMEO, options_.request_deadline);
  SetSocketBudget(fd, SO_SNDTIMEO, options_.request_deadline);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Read until the end of the request head (we ignore any body).
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > options_.max_request_bytes) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (head.empty()) return;  // peer connected and left; not a request
      break;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }

  requests_->Inc();

  HttpResponse response;
  std::string method, target;
  {
    std::istringstream line(head.substr(0, head.find('\n')));
    std::string version;
    line >> method >> target >> version;
  }
  bool head_only = method == "HEAD";
  if (method.empty() || target.empty() ||
      head.size() > options_.max_request_bytes) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (method != "GET" && method != "HEAD") {
    response = {405, "text/plain; charset=utf-8", "only GET is served here\n"};
  } else {
    if (auto query = target.find('?'); query != std::string::npos) {
      target.resize(query);
    }
    HttpRequestHandler handler;
    {
      std::lock_guard lock(mutex_);
      if (auto it = routes_.find(target); it != routes_.end()) {
        handler = it->second;
      }
    }
    if (!handler) {
      response = {404, "text/plain; charset=utf-8",
                  "no such endpoint: " + target + "\n"};
    } else {
      HttpRequest request;
      request.method = method;
      request.target = target;
      request.accept = HeaderValue(head, "accept");
      response = handler(request);
    }
  }
  if (response.status >= 400) errors_->Inc();

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += response.body;
  WriteAll(fd, out.data(), out.size());
}

}  // namespace obiwan::obs

// --- Site::ServeAdmin -------------------------------------------------------
// Defined here (not in site.cc) so obiwan_core does not depend on obiwan_obs;
// the Site header only knows an opaque shared_ptr<void>.

namespace obiwan::core {

Status Site::ServeAdmin(const std::string& addr) {
  return ServeAdmin(addr, AdminOptions{});
}

Status Site::ServeAdmin(const std::string& addr, AdminOptions options) {
  if (admin_) {
    return FailedPreconditionError("admin endpoint already serving on " +
                                   admin_address_);
  }
  obs::HttpAdminServer::Options server_options;
  server_options.request_deadline = options.request_deadline;
  OBIWAN_ASSIGN_OR_RETURN(
      std::unique_ptr<obs::HttpAdminServer> server,
      obs::HttpAdminServer::Create(addr, server_options));

  // Everything the routes capture, owned together with the server. `server`
  // is the LAST member so it is destroyed FIRST: the serving thread joins
  // before the profiler, lock-wait window and journey tracker the handlers
  // point at go away. The destructor body runs before any member destructor,
  // so the journey sink is detached from the site before the tracker dies.
  struct AdminState {
    Site* site = nullptr;
    std::unique_ptr<obs::Profiler> profiler;
    std::unique_ptr<LockWaitWindow> window;
    std::unique_ptr<obs::JourneyTracker> tracker;
    std::unique_ptr<obs::HttpAdminServer> server;
    ~AdminState() {
      if (site != nullptr) site->SetJourneySink(nullptr);
    }
  };
  auto state = std::make_shared<AdminState>();
  state->site = this;
  state->profiler = std::make_unique<obs::Profiler>(*this);
  state->window = std::make_unique<LockWaitWindow>(MetricsRegistry::Default());
  obs::JourneyOptions journey_options;
  if (options.convergence_budget > 0) {
    // Readiness and alerting should agree on what "too slow" means.
    journey_options.slo_convergence = options.convergence_budget;
  }
  state->tracker = std::make_unique<obs::JourneyTracker>(clock_, id_,
                                                         journey_options);
  obs::Profiler* profiler = state->profiler.get();
  LockWaitWindow* window = state->window.get();
  obs::JourneyTracker* tracker = state->tracker.get();
  SetJourneySink(tracker);

  server->Route("/metrics", [this](const obs::HttpRequest& request) {
    RefreshTelemetry();
    obs::RefreshProcessGauges();
    // OpenMetrics when asked for (it mandates the "# EOF" terminator);
    // Prometheus text otherwise, where "# EOF" is a harmless comment — so
    // the exposition always ends with an explicit not-truncated marker.
    const bool openmetrics =
        request.accept.find("application/openmetrics-text") !=
        std::string::npos;
    return obs::HttpResponse{
        200,
        openmetrics ? "application/openmetrics-text; version=1.0.0; "
                      "charset=utf-8"
                    : "text/plain; version=0.0.4; charset=utf-8",
        MetricsRegistry::Default().DumpPrometheus() + "# EOF\n"};
  });
  const std::size_t max_backlog = options.max_stale_backlog;
  const Nanos lock_budget = options.lock_wait_budget;
  const Nanos convergence_budget = options.convergence_budget;
  server->Route("/healthz", [this, max_backlog, lock_budget,
                             convergence_budget, window, tracker] {
    RefreshTelemetry();
    const bool transport_up = started_ && Ping(address()).ok();
    const std::size_t backlog = StaleReplicaIds().size();
    bool healthy = transport_up && backlog <= max_backlog;
    std::ostringstream body;
    std::ostringstream detail;
    if (lock_budget > 0) {
      // Lock-starvation check: p99 lock wait since the previous health
      // check, across every tracked lock. Readiness drops while threads
      // queue longer than the budget — deliberate load shedding.
      const double p99 = window->WindowP99();
      if (p99 > static_cast<double>(lock_budget)) healthy = false;
      detail << ",\"lock_wait_p99_ns\":" << static_cast<std::int64_t>(p99)
             << ",\"lock_wait_budget\":" << lock_budget;
    }
    if (convergence_budget > 0) {
      // Dissemination check: p99 time-to-all-holders over journeys that
      // completed inside the fast alert window. Readiness drops while this
      // site's updates converge slower than the budget.
      const Nanos p99 = tracker->WindowConvergenceP99();
      if (p99 > convergence_budget) healthy = false;
      detail << ",\"convergence_p99_ns\":" << p99
             << ",\"convergence_budget\":" << convergence_budget;
    }
    body << "{\"status\":\"" << (healthy ? "ok" : "unhealthy")
         << "\",\"transport\":" << (transport_up ? "true" : "false")
         << ",\"stale_backlog\":" << backlog
         << ",\"max_stale_backlog\":" << max_backlog << detail.str() << "}\n";
    return obs::HttpResponse{healthy ? 200 : 503,
                             "application/json; charset=utf-8", body.str()};
  });
  server->Route("/updates.json", [tracker] {
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             tracker->UpdatesJson()};
  });
  server->Route("/alerts.json", [tracker] {
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             tracker->AlertsJson()};
  });
  server->Route("/profile.json", [profiler] {
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             profiler->SampleOnce().ToJson() + "\n"};
  });
  server->Route("/contention", [profiler] {
    return obs::HttpResponse{200, "text/plain; charset=utf-8",
                             profiler->SampleOnce().ToText()};
  });
  server->Route("/inspect.json", [this] {
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             ToJson(Inspect())};
  });
  server->Route("/frontier.json", [this] {
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             FrontierJson(Inspect())};
  });
  server->Route("/frontier.dot", [this] {
    return obs::HttpResponse{200, "text/vnd.graphviz; charset=utf-8",
                             FrontierDot(Inspect())};
  });
  server->Route("/flight", [this] {
    (void)this;
    return obs::HttpResponse{200, "application/json; charset=utf-8",
                             FlightRecorder::Global().ChromeTraceJson()};
  });
  server->Route("/", [] {
    return obs::HttpResponse{
        200, "text/plain; charset=utf-8",
        "obiwan admin endpoints:\n"
        "  /metrics        metrics exposition, \"# EOF\"-terminated "
        "(OpenMetrics via Accept)\n"
        "  /healthz        readiness (transport + backlog + lock/convergence "
        "budgets)\n"
        "  /inspect.json   replication-state report\n"
        "  /frontier.json  replication frontier graph\n"
        "  /frontier.dot   frontier graph as Graphviz DOT\n"
        "  /updates.json   per-update journeys: ttfr/convergence/hop latency\n"
        "  /alerts.json    convergence SLO burn-rate alert state\n"
        "  /flight         flight-recorder Chrome trace\n"
        "  /profile.json   queue depths + lock hotness (one fresh sample)\n"
        "  /contention     same sample as a text report\n"};
  });

  OBIWAN_RETURN_IF_ERROR(server->Start());
  admin_address_ = server->address();
  OBIWAN_LOG(kInfo) << "site " << id_ << " admin endpoint on "
                    << admin_address_;
  state->server = std::move(server);
  admin_ = std::move(state);
  return Status::Ok();
}

}  // namespace obiwan::core
