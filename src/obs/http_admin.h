// Embedded HTTP/1.1 admin endpoint: the serving half of the observability
// plane.
//
// PRs 1-4 built deep per-process telemetry — the metrics registry, causal
// spans, the flight recorder, Site::Inspect() — but all of it was trapped
// in-process: a real operations stack (Prometheus, curl, a dashboard) had no
// way in. HttpAdminServer is the way in: a deliberately tiny HTTP/1.1 server
// that serves registered routes from one bounded thread, with per-request
// socket deadlines (the PR 3 discipline: an admin port must never wedge on a
// stalled scraper), one request per connection, and nothing else — no TLS,
// no keep-alive, no routing DSL. It is an *admin* port, not a web server.
//
// Site::ServeAdmin(addr) (declared in core/site.h, implemented here so the
// core library does not depend on this one) attaches the standard route set
// to any site:
//
//   GET /            index of the routes below
//   GET /metrics     metrics text exposition (HELP/TYPE + histogram
//                    _bucket/_sum/_count series, terminated by "# EOF");
//                    refreshes the site's continuous gauges first, so
//                    staleness/lease/role/uptime are current at every scrape.
//                    Content-negotiated: Prometheus text/plain by default,
//                    application/openmetrics-text when the Accept header
//                    asks for it
//   GET /healthz     200 {"status":"ok",...} when the site's transport
//                    answers a self-ping and the resync backlog is within
//                    bounds; 503 otherwise — wire this to your orchestrator's
//                    readiness probe
//   GET /inspect.json    the Site::Inspect() replication-state report
//   GET /frontier.json   replication-frontier graph (nodes/edges JSON)
//   GET /frontier.dot    same graph as Graphviz DOT
//   GET /updates.json    per-update journey report: ttfr/convergence/hop
//                        percentiles, recent journeys, slowest tail
//   GET /alerts.json     convergence SLO burn-rate evaluation (fast/slow
//                        window burn rates + firing state)
//   GET /flight      merged Chrome-trace dump of every flight recorder in
//                    the process (load in Perfetto)
//
// The admin socket is plain TCP on loopback-reachable INADDR_ANY and is
// independent of the site's RMI transport: a site on the simulated network
// still serves real HTTP, which is how the fleet benches are observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"

namespace obiwan::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// What a request-aware handler sees: the parsed request line plus the
// headers content negotiation cares about.
struct HttpRequest {
  std::string method;  // "GET" or "HEAD" by the time a handler runs
  std::string target;  // path with the query string stripped
  std::string accept;  // raw Accept header value ("" when absent)
};

// One route's handler. Runs on the admin serving thread; it may take the
// site lock (scrapes race protocol traffic) but must not block indefinitely.
using HttpHandler = std::function<HttpResponse()>;
// Request-aware variant for routes that negotiate on the request (e.g.
// /metrics picks its exposition format from the Accept header).
using HttpRequestHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpAdminServer {
 public:
  struct Options {
    // Per-request socket budget (read the request, write the response). A
    // scraper that stalls past this gets cut off instead of wedging the
    // serving thread.
    Nanos request_deadline = 5 * kSecond;
    // Request head (request line + headers) cap; anything larger is a 400.
    std::size_t max_request_bytes = 16 * 1024;
  };

  // `addr` is "host:port", ":port" or "port"; port 0 binds a free port (the
  // bind happens here, so address() is final before Start). The host part is
  // advisory — the server binds INADDR_ANY and reports 127.0.0.1.
  static Result<std::unique_ptr<HttpAdminServer>> Create(const std::string& addr);
  static Result<std::unique_ptr<HttpAdminServer>> Create(const std::string& addr,
                                                         Options options);

  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  // Register `handler` for exact path `path` (query strings are stripped
  // before matching). Replaces any previous handler. Safe while serving.
  void Route(const std::string& path, HttpHandler handler);
  void Route(const std::string& path, HttpRequestHandler handler);

  // Start the bounded serving thread (accept -> handle -> close, serially;
  // concurrent clients queue in the kernel backlog).
  Status Start();
  void Stop();

  // "127.0.0.1:<port>" — final after Create.
  std::string address() const;
  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const { return requests_->Value(); }
  // Connections being handled right now (0 or 1: the accept loop is serial;
  // exists as a gauge so the profiler's admin_http queue covers every admin
  // server in the process).
  std::int64_t active_requests() const { return active_->Value(); }

 private:
  HttpAdminServer(int listen_fd, std::uint16_t port, Options options);

  void ServeLoop();
  // One connection: parse the request head, dispatch, write the response.
  void HandleConnection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  Options options_;
  std::atomic<bool> running_{false};
  std::thread serve_thread_;

  mutable std::mutex mutex_;  // guards routes_
  std::map<std::string, HttpRequestHandler> routes_;

  Counter* requests_;  // obiwan_admin_http_requests_total
  Counter* errors_;    // obiwan_admin_http_errors_total (status >= 400)
  Gauge* active_;      // obiwan_admin_http_active (in-flight connections)
};

}  // namespace obiwan::obs
