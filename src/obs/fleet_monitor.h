// FleetMonitor: the cross-site half of the observability plane.
//
// A single site's /metrics tells you about that site; the paper's mobility
// story (and the ROADMAP's fleet-scale open item) is about *many* devices
// converging after disconnection. FleetMonitor polls N sites over the
// existing kInspect RMI plane — no new protocol message — through one
// vantage site whose transport (TCP, sim, loopback) and clock (real or
// virtual) it inherits, and merges the per-site reports into fleet-wide
// series:
//
//   - convergence lag: each site contributes the max staleness of its
//     replicas, in master versions and in age; the fleet report carries the
//     p50/p95/max of those per-site maxima. A healthy fleet converges these
//     to zero after churn.
//   - holder health and object-role totals across every polled site.
//   - per-object hotness: top-K objects by serve traffic (gets + puts on
//     their master), for finding the content everyone replicates.
//   - bytes-per-update: replica payload bytes shipped per master put since
//     the previous poll — the incremental-replication cost figure.
//
// It also burns a convergence-lag SLO: while any site's lag exceeds the
// configured bound, wall-clock (or virtual-clock) time accrues into
// obiwan_fleet_slo_breach_seconds_total. Surfaced via `obiwan_shell fleet`
// and every /metrics endpoint in the monitoring process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/inspect.h"
#include "core/site.h"

namespace obiwan::obs {

struct FleetOptions {
  // Background-poll cadence (Start/Stop; PollOnce ignores it).
  Nanos poll_interval = 2 * kSecond;
  // Convergence-lag SLO: breach while any reachable site's replica lag
  // exceeds either bound. slo_lag_versions 0 means versions alone never
  // breach (age still does).
  Nanos slo_lag_age = 30 * kSecond;
  std::uint64_t slo_lag_versions = 0;
  // Hotness leaderboard length.
  std::size_t top_k = 5;
};

// One polled site's contribution to the fleet view.
struct FleetSiteSample {
  net::Address address;
  bool reachable = false;
  SiteId site = kInvalidSite;
  std::uint64_t masters = 0;
  std::uint64_t replicas = 0;
  std::uint64_t frontier = 0;
  std::uint64_t stale = 0;        // replicas currently marked stale
  std::uint64_t holders = 0;      // downstream holders registered here
  std::uint64_t lag_versions = 0; // max replica staleness (versions)
  Nanos lag_age = 0;              // max stale replica age
};

struct FleetHotObject {
  ObjectId id;
  std::string class_name;
  std::uint64_t traffic = 0;  // master gets served + puts accepted
};

// Merged fleet view from one poll round.
struct FleetReport {
  Nanos now = 0;            // monitor clock at merge time
  std::uint64_t polls = 0;  // rounds so far, this one included
  std::size_t sites = 0;    // targets polled
  std::size_t reachable = 0;
  std::uint64_t masters = 0;
  std::uint64_t replicas = 0;
  std::uint64_t frontier = 0;
  std::uint64_t stale_replicas = 0;
  std::uint64_t holders = 0;
  // Distribution of per-site max replica lag, over reachable sites.
  std::uint64_t lag_versions_p50 = 0;
  std::uint64_t lag_versions_p95 = 0;
  std::uint64_t lag_versions_max = 0;
  Nanos lag_age_p50 = 0;
  Nanos lag_age_p95 = 0;
  Nanos lag_age_max = 0;
  // Master puts accepted fleet-wide, and replica payload bytes shipped per
  // put since the previous poll (0 on the first round or an idle interval).
  std::uint64_t updates = 0;
  double bytes_per_update = 0;
  // SLO state: breached this round, and total breach time so far.
  bool slo_breached = false;
  double slo_breach_seconds = 0;
  std::vector<FleetSiteSample> site_samples;
  std::vector<FleetHotObject> hottest;  // top-K by traffic, descending
};

std::string ToJson(const FleetReport& report);
std::string ToText(const FleetReport& report);

class FleetMonitor {
 public:
  // Polls `targets` through `via` (via.InspectRemote; via's own address is
  // inspected locally). `via` must outlive the monitor.
  FleetMonitor(core::Site& via, std::vector<net::Address> targets);
  FleetMonitor(core::Site& via, std::vector<net::Address> targets,
               FleetOptions options);
  ~FleetMonitor();

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  void AddTarget(net::Address target);
  std::size_t target_count() const;

  // One synchronous poll round: pull every target's InspectReport, merge,
  // update the fleet gauges and SLO burn, return (and retain) the report.
  // Deterministic under a VirtualClock — benches drive this directly.
  FleetReport PollOnce();

  // Last merged report (empty before the first poll).
  FleetReport last() const;

  // Background polling every options.poll_interval on the via-site's clock.
  // For virtual clocks prefer driving PollOnce() explicitly.
  Status Start();
  void Stop();

 private:
  FleetReport MergeLocked(std::vector<FleetSiteSample> samples,
                          const std::vector<core::InspectReport>& reports);

  core::Site& via_;
  FleetOptions options_;

  mutable std::mutex mutex_;
  std::vector<net::Address> targets_;
  FleetReport last_;
  std::uint64_t polls_ = 0;
  Nanos last_poll_at_ = -1;  // -1 = no completed poll yet
  std::int64_t breach_ns_total_ = 0;
  std::int64_t breach_sec_counted_ = 0;  // whole seconds already in the counter
  // Per-object master state at the previous poll, for the bytes-per-update
  // and fleet-updates deltas.
  struct MasterSnapshot {
    std::uint64_t puts = 0;
    std::uint64_t payload_bytes = 0;
  };
  std::map<std::pair<SiteId, std::uint64_t>, MasterSnapshot> prev_masters_;
  std::uint64_t prev_updates_total_ = 0;

  std::atomic<bool> running_{false};
  std::thread poll_thread_;
  std::condition_variable cv_;
  std::mutex cv_mutex_;

  // Fleet-wide gauges/counters (labels {"inst"}), updated on every poll.
  Gauge* sites_polled_;
  Gauge* sites_reachable_;
  Gauge* objects_master_;
  Gauge* objects_replica_;
  Gauge* objects_frontier_;
  Gauge* stale_replicas_;
  Gauge* holders_;
  Gauge* lag_versions_p50_;
  Gauge* lag_versions_p95_;
  Gauge* lag_versions_max_;
  Gauge* lag_age_p50_;
  Gauge* lag_age_p95_;
  Gauge* lag_age_max_;
  Gauge* bytes_per_update_;
  Gauge* slo_breached_;
  Counter* polls_total_;
  Counter* unreachable_polls_total_;
  Counter* slo_breach_seconds_total_;
};

}  // namespace obiwan::obs
