// Queue-depth sampler + process self-telemetry: the "where is work piling
// up" half of the contention observatory (common/contention.h is the "which
// lock is hot" half).
//
// Counters say how much work happened; queue depths say how much is *waiting*
// — the leading indicator of saturation. The Profiler snapshots every queue a
// site owns into gauges (instantaneous depth for dashboards) and histograms
// (depth distribution across samples, so "the retry queue spends 10% of
// samples above 100" survives scrape aliasing):
//
//   obiwan_queue_depth{queue,...}          last sampled depth
//   obiwan_queue_depth_samples{queue,...}  histogram of sampled depths
//
// Sampled queues: notify_retries (backoff-queued holder notifications),
// stale_replicas (invalidated replicas awaiting resync), fanout_inflight
// (holder notifications executing right now), tcp_pool_idle / tcp_connections
// (client pool occupancy and live server handler threads, TCP transports
// only) and admin_http (in-flight admin connections, process-wide).
//
// Mirrors the FleetMonitor/ResyncDaemon split: deterministic consumers
// (tests, simulations, the /profile.json route) call SampleOnce() by hand;
// real deployments call Start() for a background worker on a real clock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/contention.h"
#include "common/metrics.h"
#include "core/site.h"

namespace obiwan::obs {

// One sampled queue: its label value and the depth observed.
struct QueueSample {
  std::string queue;
  std::int64_t depth = 0;
};

// A full sample: every queue depth plus the current lock-hotness ranking
// (top lock names by total wait — the on-demand contention report).
struct ProfileReport {
  Nanos at = 0;  // site clock
  std::vector<QueueSample> queues;
  std::vector<LockSiteReport> locks;

  std::string ToJson() const;
  std::string ToText() const;
};

struct ProfilerOptions {
  // Background sampling period (Start/Stop worker; SampleOnce ignores it).
  Nanos interval = 1 * kSecond;
  // Lock names kept in the hotness ranking.
  std::size_t top_k_locks = 10;
};

class Profiler {
 public:
  explicit Profiler(core::Site& site) : Profiler(site, ProfilerOptions{}) {}
  Profiler(core::Site& site, ProfilerOptions options,
           MetricsRegistry& registry = MetricsRegistry::Default());
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // One deterministic sweep: read every queue, feed the gauges/histograms,
  // rank the locks, remember and return the report.
  ProfileReport SampleOnce();

  // Background worker on the system clock (queue depths of a virtual-time
  // simulation should be sampled deterministically via SampleOnce instead).
  void Start();
  void Stop();

  // The most recent report (empty before the first sample).
  ProfileReport last() const;

 private:
  struct QueueSeries {
    Gauge* depth = nullptr;
    Histogram* samples = nullptr;
  };

  QueueSeries MakeSeries(const char* queue);
  void Record(const QueueSeries& series, const char* queue, std::int64_t depth,
              std::vector<QueueSample>& out);
  void RunLoop();

  core::Site& site_;
  ProfilerOptions options_;
  MetricsRegistry& registry_;

  QueueSeries notify_retries_;
  QueueSeries stale_replicas_;
  QueueSeries fanout_inflight_;
  QueueSeries tcp_pool_idle_;
  QueueSeries tcp_connections_;
  QueueSeries admin_http_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  ProfileReport last_;
  bool running_ = false;
  std::thread worker_;
};

// Refresh obiwan_process_rss_bytes / obiwan_process_open_fds /
// obiwan_process_threads from /proc/self. Process-wide (no labels), cheap
// enough to run per scrape; a no-op on platforms without procfs.
void RefreshProcessGauges(MetricsRegistry& registry = MetricsRegistry::Default());

}  // namespace obiwan::obs
