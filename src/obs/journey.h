// JourneyTracker: per-update dissemination ground truth.
//
// FleetMonitor's polled version-lag distribution aliases anything faster
// than its poll period. The journey tracker removes the aliasing: it is a
// core::JourneySink (core/journey.h) that accumulates the hop stamps the
// replication paths emit for every update — put commit, notify enqueue,
// wire send, ack return on the provider; receive and apply on the holder —
// keyed by the (object, version) UpdateId that already travels in every
// invalidation and push body.
//
// Completed journeys fold into:
//   obiwan_update_ttfr_ns          time-to-first-replica (first ack)
//   obiwan_update_convergence_ns   time-to-all-holders (last ack), with a
//                                  tail exemplar carrying the journey's
//                                  TraceId (the flight-recorder link)
//   obiwan_update_hop_ns{hop=queue|wire|apply}   per-hop breakdown
// plus a slowest-K list with trace ids, and a multi-window SLO burn-rate
// evaluator: a journey is "bad" when convergence exceeds the SLO; the alert
// fires while both the fast (5 min) and slow (1 h) windows burn error
// budget faster than the threshold, and clears once the fast window drains
// — the standard page-on-burn-rate discipline, driven by the site's clock
// so virtual-clock tests exercise fire and clear deterministically.
//
// Storage is a bounded ring of journey records behind a striped index, so
// stamping from fanout workers and transport threads shards its locking.
// All methods are internally synchronized; the tracker never calls back
// into the site (see the JourneySink threading contract).
//
// Surfaced via /updates.json and /alerts.json on the admin endpoint
// (http_admin.cc), `obiwan_shell journeys`, and the opt-in /healthz
// convergence budget (AdminOptions::convergence_budget).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/metrics.h"
#include "core/journey.h"
#include "net/transport.h"

namespace obiwan::obs {

struct JourneyOptions {
  // Journey records retained across all stripes; completed and in-flight
  // journeys beyond this evict oldest-first (their folded metrics remain).
  std::size_t capacity = 512;
  std::size_t stripes = 8;
  // Convergence SLO: a journey is bad when time-to-all-holders exceeds it.
  Nanos slo_convergence = 1 * kSecond;
  // Allowed bad fraction (0.01 = 99% of updates converge within the SLO).
  double slo_budget = 0.01;
  Nanos fast_window = 300 * kSecond;   // 5 min
  Nanos slow_window = 3600 * kSecond;  // 1 h
  // Fires while BOTH windows burn budget at >= this multiple of the
  // sustainable rate (14.4 = the classic 5m/1h page threshold).
  double burn_threshold = 14.4;
  std::size_t slowest_k = 5;           // tail journeys retained with traces
  std::size_t max_alert_events = 65536;
};

// One recipient's hop stamps within a provider-side journey (-1 = not yet).
struct JourneyHopView {
  std::string holder;
  Nanos enqueue = -1;
  Nanos send = -1;
  Nanos ack = -1;
  bool acked = false;
};

// Flattened journey record. Provider-side journeys carry put_commit +
// per-recipient hops; holder-side journeys carry receive/apply instead.
struct JourneyView {
  ObjectId id{};
  std::uint64_t version = 0;
  bool push = false;
  TraceId trace{};
  Nanos put_commit = -1;
  Nanos receive = -1;
  Nanos apply = -1;
  std::size_t expected = 0;
  std::size_t acked = 0;
  bool complete = false;
  Nanos ttfr = -1;
  Nanos convergence = -1;
  std::uint64_t seq = 0;  // mint order; larger = more recent
  std::vector<JourneyHopView> hops;
};

struct BurnWindow {
  Nanos window = 0;
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  double burn_rate = 0;  // (bad/total) / slo_budget; 0 when total == 0
};

struct JourneyAlert {
  bool firing = false;
  Nanos now = 0;
  Nanos slo_convergence = 0;
  double burn_threshold = 0;
  BurnWindow fast;
  BurnWindow slow;
};

class JourneyTracker final : public core::JourneySink {
 public:
  JourneyTracker(Clock& clock, SiteId site, JourneyOptions options = {});

  JourneyTracker(const JourneyTracker&) = delete;
  JourneyTracker& operator=(const JourneyTracker&) = delete;

  // core::JourneySink — stamped by the replication paths.
  void OnPutCommit(ObjectId id, std::uint64_t version, Nanos now,
                   std::size_t recipients, bool push, TraceId trace) override;
  void OnNotifyEnqueue(ObjectId id, std::uint64_t version,
                       const net::Address& holder, Nanos now) override;
  void OnWireSend(ObjectId id, std::uint64_t version,
                  const net::Address& holder, Nanos now) override;
  void OnAckReturn(ObjectId id, std::uint64_t version,
                   const net::Address& holder, Nanos now, bool ok) override;
  void OnHolderReceive(ObjectId id, std::uint64_t version, Nanos now,
                       bool push) override;
  void OnReplicaApply(ObjectId id, std::uint64_t version, Nanos now) override;

  // Most recent journeys (newest first), and the slowest completed ones
  // (worst first, each with its TraceId).
  std::vector<JourneyView> Recent(std::size_t n) const;
  std::vector<JourneyView> Slowest() const;

  // One evaluation round on the tracker's clock: prune aged-out events,
  // recompute both windows' burn rates, update the gauges, return the state.
  JourneyAlert EvaluateAlerts();

  // p99 convergence over journeys completed within the fast window; 0 when
  // none. The /healthz convergence budget compares against this.
  Nanos WindowConvergenceP99() const;

  std::uint64_t minted() const { return minted_->Value(); }
  std::uint64_t completed() const { return completed_->Value(); }

  // /updates.json body: counts, ttfr/convergence/per-hop percentiles,
  // recent journeys and the slowest tail.
  std::string UpdatesJson(std::size_t recent = 20);
  // /alerts.json body: the burn-rate evaluation (runs one round).
  std::string AlertsJson();
  // Human-readable summary for `obiwan_shell journeys`.
  std::string ToText(std::size_t recent = 8);

  const JourneyOptions& options() const { return options_; }

 private:
  struct Hop {
    net::Address holder;
    Nanos enqueue = -1;
    Nanos send = -1;
    Nanos ack = -1;
    bool acked = false;
  };
  struct Record {
    ObjectId id{};
    std::uint64_t version = 0;
    bool push = false;
    TraceId trace{};
    Nanos put_commit = -1;
    Nanos receive = -1;
    Nanos apply = -1;
    std::size_t expected = 0;
    std::size_t acked = 0;
    Nanos first_ack = -1;
    Nanos last_ack = -1;
    bool complete = false;
    Nanos ttfr = -1;
    Nanos convergence = -1;
    std::uint64_t seq = 0;
    std::vector<Hop> hops;
  };
  struct Key {
    ObjectId id{};
    std::uint64_t version = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return ObjectIdHash{}(k.id) * 1099511628211ull ^ k.version;
    }
  };
  // Journeys shard by key so fanout workers stamping different updates do
  // not serialize. std::deque keeps element pointers stable across
  // push_back/pop_front, so the index can hold Record* directly.
  struct Stripe {
    mutable std::mutex mutex;
    std::deque<Record> ring;
    std::unordered_map<Key, Record*, KeyHash> index;
  };
  struct Event {
    Nanos at = 0;           // completion time (site clock)
    Nanos convergence = 0;
  };

  Stripe& StripeFor(const Key& key) const;
  // Stripe mutex held. Creating evicts oldest-first past the per-stripe cap.
  Record* FindOrCreate(Stripe& stripe, const Key& key);
  Record* Find(Stripe& stripe, const Key& key);
  Hop& HopFor(Record& record, const net::Address& holder);
  // Stripe mutex held; folds ttfr/convergence, alert event, slowest-K.
  void FoldCompleted(const Record& record);
  static JourneyView ViewOf(const Record& record);
  void PruneEventsLocked(Nanos now);

  Clock& clock_;
  SiteId site_;
  JourneyOptions options_;
  std::size_t per_stripe_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> seq_{0};

  // Alert/summary state: completion events inside the slow window plus the
  // slowest-K tail. A leaf lock taken after a stripe mutex, never before.
  mutable std::mutex summary_mutex_;
  std::deque<Event> events_;
  std::vector<JourneyView> slowest_;
  JourneyAlert last_alert_;

  Counter* minted_;      // obiwan_update_journeys_total
  Counter* completed_;   // obiwan_update_journeys_completed_total
  Histogram* ttfr_;      // obiwan_update_ttfr_ns
  Histogram* convergence_;  // obiwan_update_convergence_ns (exemplars on)
  Histogram* hop_queue_;    // obiwan_update_hop_ns{hop=queue}
  Histogram* hop_wire_;     // obiwan_update_hop_ns{hop=wire}
  Histogram* hop_apply_;    // obiwan_update_hop_ns{hop=apply}
  Gauge* burn_fast_;     // obiwan_update_burn_rate_milli{window=fast}
  Gauge* burn_slow_;     // obiwan_update_burn_rate_milli{window=slow}
  Gauge* alert_firing_;  // obiwan_update_alert_firing
};

}  // namespace obiwan::obs
