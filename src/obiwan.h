// OBIWAN — Object Broker Infrastructure for Wide Area Networks.
//
// Umbrella header: everything an application needs.
//
//   #include "obiwan.h"
//
//   using namespace obiwan;
//
//   // 1. Declare shareable classes (see core/shareable.h for the contract).
//   // 2. Create sites on a transport (loopback / simulated / TCP).
//   // 3. Bind masters in the name server, Lookup remote refs elsewhere.
//   // 4. Invoke remotely (RMI) or Replicate(mode) and invoke locally (LMI);
//   //    replicas keep working across disconnections and are pushed back
//   //    with Put / PutCluster.
#pragma once

#include "adaptive/adaptive_ref.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/status.h"
#include "consistency/lww.h"
#include "consistency/version_vector.h"
#include "consistency/write_invalidate.h"
#include "core/batch.h"
#include "core/consistency.h"
#include "core/inspect.h"
#include "core/messages.h"
#include "core/mode.h"
#include "core/prefetcher.h"
#include "core/proxy.h"
#include "core/ref.h"
#include "core/remote_ref.h"
#include "core/shareable.h"
#include "core/site.h"
#include "net/compressed.h"
#include "net/loopback.h"
#include "net/retry.h"
#include "net/sim.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/fleet_monitor.h"
#include "obs/http_admin.h"
#include "rmi/registry.h"
#include "tx/transaction.h"
#include "wire/codec.h"
#include "wire/compress.h"
