// Instrumented mutexes: the measurement half of the lock-contention story.
//
// The ROADMAP's sharded-object-table refactor needs evidence before surgery:
// which lock is hot, how long do threads wait on it, how long is it held, and
// how does that scale with concurrency. TrackedMutex / TrackedRecursiveMutex
// are drop-in std::mutex / std::recursive_mutex replacements (same
// lock/try_lock/unlock surface, so std::lock_guard and std::unique_lock call
// sites are untouched) that record per-lock-name telemetry into the metrics
// registry:
//
//   obiwan_lock_wait_ns{name}            histogram of time threads blocked
//                                        acquiring the lock (contended
//                                        acquisitions only; uncontended ones
//                                        wait 0 by definition)
//   obiwan_lock_hold_ns{name}            histogram of outermost-acquisition-
//                                        to-final-release hold times
//   obiwan_lock_contended_total{name}    acquisitions that had to block
//   obiwan_lock_acquisitions_total{name} all acquisitions
//   obiwan_lock_waiters{name}            threads blocked right now
//
// Handles are resolved once at bind time (the only moment the registry lock
// is taken); every acquisition after that costs one try_lock plus a couple of
// relaxed atomic bumps, and the contended path adds two clock reads. Metrics
// are shared per (registry, name): every Site's "site" mutex feeds one
// obiwan_lock_wait_ns{name="site"} family, which keeps cardinality flat no
// matter how many sites a bench spins up.
//
// Compile-time off switch: configure with -DOBIWAN_LOCK_TELEMETRY=OFF (which
// defines OBIWAN_NO_LOCK_TELEMETRY) and the wrappers collapse to the bare
// mutex — no atomics, no clock reads, no registry entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace obiwan {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

// Per-lock-name metric handles, shared by every tracked mutex bound to the
// same (registry, name) pair.
struct LockStats {
  Histogram* wait = nullptr;        // obiwan_lock_wait_ns{name}
  Histogram* hold = nullptr;        // obiwan_lock_hold_ns{name}
  Counter* contended = nullptr;     // obiwan_lock_contended_total{name}
  Counter* acquisitions = nullptr;  // obiwan_lock_acquisitions_total{name}
  Gauge* waiters = nullptr;         // obiwan_lock_waiters{name}
};

// Bucket bounds for the wait/hold histograms: 100 ns .. ~3.4 s, ×2 steps —
// finer at the bottom than the RPC buckets because uncontended handoffs live
// in the sub-microsecond range.
const std::vector<std::int64_t>& LockLatencyBuckets();

// Resolve (and cache, for the process-default registry) the shared handles
// for lock name `name` in `registry`. The returned pointer lives for the
// process; handles into a non-default registry are valid only while that
// registry is.
LockStats* BindLockStats(MetricsRegistry& registry, const char* name);

// One row of the lock-hotness report: a lock name's aggregate telemetry.
struct LockSiteReport {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::int64_t wait_total_ns = 0;  // total time threads spent blocked
  std::int64_t hold_total_ns = 0;
  std::int64_t wait_max_ns = 0;
  double wait_p99_ns = 0;
  std::int64_t waiters = 0;  // blocked right now
};

// Top-`top_k` lock names by total wait time, descending (ties broken by name
// ascending so repeated reports don't flap). Enumerates lock sites straight
// from the registry's obiwan_lock_wait_ns label values — no side table.
std::vector<LockSiteReport> LockHotness(const MetricsRegistry& registry,
                                        std::size_t top_k = 10);
std::string LockHotnessText(const std::vector<LockSiteReport>& report);

// Windowed lock-wait percentile: each call diffs the merged
// obiwan_lock_wait_ns buckets against the previous call's snapshot and
// returns the p99 over just that window — what the /healthz lock-starvation
// budget compares against (an all-time p99 would never recover from one bad
// burst). The first call establishes the baseline and returns 0.
class LockWaitWindow {
 public:
  explicit LockWaitWindow(const MetricsRegistry& registry)
      : registry_(registry) {}

  double WindowP99();

 private:
  const MetricsRegistry& registry_;
  std::mutex mutex_;
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> last_counts_;
};

#ifndef OBIWAN_NO_LOCK_TELEMETRY

// The instrumented wrapper. Three binding shapes:
//   TrackedMutex m{"site"};              bind into MetricsRegistry::Default()
//   TrackedMutex m; m.Configure("x");    deferred (array members)
//   m.BindTo(registry, "x");             explicit registry (tests; the
//                                        registry's own lock)
// An unbound instance is a plain passthrough, which is what lets the metrics
// registry instrument its own mutex without a bootstrap cycle.
template <typename MutexT>
class TrackedMutexImpl {
 public:
  TrackedMutexImpl() = default;
  explicit TrackedMutexImpl(const char* name,
                            Clock& clock = SystemClock::Instance()) {
    Configure(name, clock);
  }

  TrackedMutexImpl(const TrackedMutexImpl&) = delete;
  TrackedMutexImpl& operator=(const TrackedMutexImpl&) = delete;

  // Bind into the process-default registry. Call before the mutex is shared
  // across threads (constructors); not thread-safe against concurrent locks.
  void Configure(const char* name, Clock& clock = SystemClock::Instance());
  void BindTo(MetricsRegistry& registry, const char* name,
              Clock& clock = SystemClock::Instance());

  void lock();
  bool try_lock();
  void unlock();

 private:
  // Common post-acquisition bookkeeping; runs with the mutex held.
  void Acquired(const LockStats* stats);

  MutexT mutex_;
  std::atomic<const LockStats*> stats_{nullptr};
  Clock* clock_ = nullptr;
  // Touched only while mutex_ is held: recursion depth, and whether/when the
  // outermost acquisition started the hold timer (binding can race an
  // in-flight critical section, so unlock trusts hold_timed_, not stats_).
  int depth_ = 0;
  bool hold_timed_ = false;
  Nanos held_since_ = 0;
};

extern template class TrackedMutexImpl<std::mutex>;
extern template class TrackedMutexImpl<std::recursive_mutex>;

using TrackedMutex = TrackedMutexImpl<std::mutex>;
using TrackedRecursiveMutex = TrackedMutexImpl<std::recursive_mutex>;

#else  // OBIWAN_NO_LOCK_TELEMETRY

// Zero-overhead build: the wrapper is the bare mutex. Configure/BindTo keep
// their signatures so call sites compile unchanged.
template <typename MutexT>
class TrackedMutexImpl {
 public:
  TrackedMutexImpl() = default;
  explicit TrackedMutexImpl(const char*, Clock& = SystemClock::Instance()) {}

  TrackedMutexImpl(const TrackedMutexImpl&) = delete;
  TrackedMutexImpl& operator=(const TrackedMutexImpl&) = delete;

  void Configure(const char*, Clock& = SystemClock::Instance()) {}
  void BindTo(MetricsRegistry&, const char*,
              Clock& = SystemClock::Instance()) {}

  void lock() { mutex_.lock(); }
  bool try_lock() { return mutex_.try_lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  MutexT mutex_;
};

using TrackedMutex = TrackedMutexImpl<std::mutex>;
using TrackedRecursiveMutex = TrackedMutexImpl<std::recursive_mutex>;

#endif  // OBIWAN_NO_LOCK_TELEMETRY

}  // namespace obiwan
