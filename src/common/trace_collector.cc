#include "common/trace_collector.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

namespace obiwan {

namespace {

std::string JsonString(std::string_view in) {
  std::string out = "\"";
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Chrome trace timestamps are microseconds; keep sub-microsecond precision so
// virtual-clock spans a few ns apart stay ordered in the viewer.
std::string Micros(Nanos ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

struct FlowKey {
  SiteId site;
  int tid;
  friend bool operator<(const FlowKey& a, const FlowKey& b) {
    return a.site != b.site ? a.site < b.site : a.tid < b.tid;
  }
};

class ChromeWriter {
 public:
  void Append(std::string event) { events_.push_back(std::move(event)); }

  void Duration(char ph, const Span& s, Nanos at, int tid) {
    std::string out = "{\"name\":";
    out += JsonString(s.name.empty() ? s.category : s.name);
    out += ",\"cat\":" + JsonString(s.category);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":" + std::to_string(s.site);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"ts\":" + Micros(at);
    if (ph == 'B') {
      out += ",\"args\":{\"span\":" + std::to_string(s.id) +
             ",\"parent\":" + std::to_string(s.parent);
      if (s.failed) out += ",\"failed\":true";
      if (s.trace.valid()) {
        out += ",\"trace\":" + JsonString(ToString(s.trace));
      }
      out += "}";
    }
    out += "}";
    Append(std::move(out));
  }

  void Instant(const TraceEvent& e, int tid) {
    std::string out = "{\"name\":" + JsonString(e.category);
    out += ",\"ph\":\"i\",\"s\":\"t\"";
    out += ",\"pid\":" + std::to_string(e.site);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"ts\":" + Micros(e.at);
    out += ",\"args\":{\"detail\":" + JsonString(e.detail) + "}}";
    Append(std::move(out));
  }

  void Metadata(SiteId pid, int tid, std::string_view what,
                std::string_view name) {
    std::string out = "{\"name\":\"";
    out += what;
    out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"args\":{\"name\":" + JsonString(name) + "}}";
    Append(std::move(out));
  }

  std::string Finish(
      const std::vector<std::pair<std::string, std::string>>& other_data)
      const {
    std::string out = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (i != 0) out += ",\n";
      out += events_[i];
    }
    out += "]";
    if (!other_data.empty()) {
      out += ",\"otherData\":{";
      for (std::size_t i = 0; i < other_data.size(); ++i) {
        if (i != 0) out += ",";
        out += JsonString(other_data[i].first) + ":" + other_data[i].second;
      }
      out += "}";
    }
    out += ",\"displayTimeUnit\":\"ms\"}\n";
    return out;
  }

 private:
  std::vector<std::string> events_;
};

}  // namespace

void TraceCollector::Attach(const Tracer* tracer) {
  if (tracer != nullptr) tracers_.push_back(tracer);
}

std::vector<Span> TraceCollector::MergedSpans() const {
  std::vector<Span> out;
  for (const Tracer* t : tracers_) {
    std::vector<Span> spans = t->SnapshotSpans();
    out.insert(out.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.begin != b.begin ? a.begin < b.begin : a.id < b.id;
  });
  return out;
}

std::vector<TraceEvent> TraceCollector::MergedEvents() const {
  std::vector<TraceEvent> out;
  for (const Tracer* t : tracers_) {
    std::vector<TraceEvent> events = t->Snapshot();
    out.insert(out.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::string TraceCollector::DumpText() const {
  std::string out;
  for (const TraceEvent& event : MergedEvents()) {
    out += event.ToString();
    out += '\n';
  }
  for (const Span& span : MergedSpans()) {
    out += span.ToString();
    out += '\n';
  }
  return out;
}

std::string TraceCollector::ChromeTraceJson() const {
  return obiwan::ChromeTraceJson(MergedSpans(), MergedEvents());
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot open trace file: " + path);
  out << ChromeTraceJson();
  out.flush();
  if (!out) return InternalError("failed writing trace file: " + path);
  return Status::Ok();
}

std::string ChromeTraceJson(std::vector<Span> spans,
                            std::vector<TraceEvent> events) {
  return ChromeTraceJson(std::move(spans), std::move(events), {});
}

std::string ChromeTraceJson(
    std::vector<Span> spans, std::vector<TraceEvent> events,
    const std::vector<std::pair<std::string, std::string>>& other_data) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.begin != b.begin ? a.begin < b.begin : a.id < b.id;
  });
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });

  // One tid per distributed flow, numbered in order of first appearance;
  // tid 0 holds everything recorded outside any flow.
  std::map<TraceId, int> flow_tids;
  auto tid_of = [&flow_tids](const TraceId& trace) {
    if (!trace.valid()) return 0;
    auto [it, inserted] =
        flow_tids.emplace(trace, static_cast<int>(flow_tids.size()) + 1);
    (void)inserted;
    return it->second;
  };

  // Group spans by (site, flow) and rebuild each group's parent tree; a
  // span whose parent completed out of ring range (or lives in another
  // group) becomes a root of its group.
  std::map<FlowKey, std::vector<const Span*>> groups;
  for (const Span& s : spans) {
    groups[FlowKey{s.site, tid_of(s.trace)}].push_back(&s);
  }

  ChromeWriter writer;
  for (const auto& [key, members] : groups) {
    std::unordered_map<std::uint64_t, const Span*> by_id;
    for (const Span* s : members) by_id[s->id] = s;
    std::unordered_map<std::uint64_t, std::vector<const Span*>> children;
    std::vector<const Span*> roots;
    for (const Span* s : members) {
      if (s->parent != 0 && by_id.count(s->parent) != 0 &&
          s->parent != s->id) {
        children[s->parent].push_back(s);
      } else {
        roots.push_back(s);
      }
    }
    // Emit depth-first; clamp children into their parent's interval so the
    // B/E stream is well-nested even if clocks or ring eviction produced
    // slightly inconsistent endpoints.
    struct Frame {
      const Span* span;
      Nanos lo;
      Nanos hi;
    };
    auto emit = [&](auto&& self, const Span* s, Nanos lo, Nanos hi) -> void {
      const Nanos b = std::clamp(s->begin, lo, hi);
      const Nanos e = std::clamp(s->end < b ? b : s->end, b, hi);
      writer.Duration('B', *s, b, key.tid);
      for (const Span* child : children[s->id]) self(self, child, b, e);
      writer.Duration('E', *s, e, key.tid);
    };
    for (const Span* root : roots) {
      emit(emit, root, std::numeric_limits<Nanos>::min(),
           std::numeric_limits<Nanos>::max());
    }
  }

  for (const TraceEvent& e : events) {
    writer.Instant(e, tid_of(e.trace));
  }

  // Name every process and flow the trace references.
  std::map<SiteId, bool> pids;
  std::map<FlowKey, TraceId> flows;
  for (const Span& s : spans) {
    pids[s.site] = true;
    flows[FlowKey{s.site, tid_of(s.trace)}] = s.trace;
  }
  for (const TraceEvent& e : events) {
    pids[e.site] = true;
    flows[FlowKey{e.site, tid_of(e.trace)}] = e.trace;
  }
  for (const auto& [pid, used] : pids) {
    (void)used;
    writer.Metadata(pid, 0, "process_name",
                    pid == kInvalidSite ? "network/harness"
                                        : "site " + std::to_string(pid));
  }
  for (const auto& [key, trace] : flows) {
    writer.Metadata(key.site, key.tid, "thread_name",
                    trace.valid() ? "flow " + std::to_string(trace.site) +
                                        ":" + std::to_string(trace.seq)
                                  : std::string("untraced"));
  }

  return writer.Finish(other_data);
}

}  // namespace obiwan
