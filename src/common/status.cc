#include "common/status.h"

namespace obiwan {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kDisconnected: return "DISCONNECTED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace obiwan
