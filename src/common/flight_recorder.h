// FlightRecorder: the process-wide registry of always-on per-site span
// buffers, and the dump-on-failure hook.
//
// Every core::Site owns a small bounded Tracer that records its spans and
// events whether or not a user tracer is attached — a black box holding the
// last N steps of every site in the process. The recorder tracks those
// buffers and can render them all, merged on the shared clock, as Chrome
// trace-event JSON at any moment:
//
//   - post-mortem: ArmDumpOnFailure(path) makes the *first* subsequent
//     NotifyFailure() (called by Site when a request's Status comes back
//     non-OK) write the dump and disarm — a failed test or a disconnection
//     window leaves a loadable timeline of what every site was doing;
//   - on demand: WriteDump(path) from a test fixture's failure handler or
//     `obiwan_shell --flight-dump <path>`;
//   - hands-off: setting OBIWAN_FLIGHT_DUMP=<path> in the environment arms
//     the recorder at first use, so any run can be re-executed with a
//     flight dump without touching code.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/trace.h"

namespace obiwan {

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  // Optional per-site state summary, rendered into every dump's "otherData"
  // next to the spans, so a post-mortem shows *what the site held* at failure
  // time, not just what it was doing. Must return valid JSON; runs at dump
  // time on the dumping thread (so it may take the site's own lock, but the
  // site must never trigger a dump while holding that lock).
  using StateProvider = std::function<std::string()>;

  // Sites register their flight tracer for their lifetime; the tracer (and
  // the state provider's captures) must stay valid until Unregister.
  void Register(SiteId site, Tracer* tracer, StateProvider state = {});
  void Unregister(Tracer* tracer);

  // Merged Chrome trace JSON over every registered flight buffer.
  std::string ChromeTraceJson() const;
  Status WriteDump(const std::string& path) const;

  // Arm the post-mortem hook: the first NotifyFailure() after arming writes
  // a Chrome-trace dump to `path` and disarms (re-arm to capture another).
  // An empty path disarms without dumping.
  void ArmDumpOnFailure(std::string path);
  bool armed() const;

  // Called on the failure path (Site's outbound requests); cheap when
  // disarmed. `reason` is recorded in the dump's metadata.
  void NotifyFailure(std::string_view reason);

  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    SiteId site;
    Tracer* tracer;
    StateProvider state;
  };

  FlightRecorder();

  // Render spans + state summaries; call with mutex_ held.
  std::string RenderLocked() const;

  mutable std::mutex mutex_;
  std::vector<Entry> tracers_;
  std::string dump_path_;
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace obiwan
