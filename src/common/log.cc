#include "common/log.h"

#include <atomic>

#include "common/metrics.h"

namespace obiwan {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_output_mutex;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

// Lazily registered so quiet processes that never warn pay nothing. Must not
// be resolved while the registry mutex is held — metrics.cc therefore logs
// its own errors only after releasing its lock.
Counter& LogCounter(LogLevel level) {
  if (level == LogLevel::kWarning) {
    static Counter* counter = &MetricsRegistry::Default().GetCounter(
        "obiwan_log_messages_total", {{"level", "warning"}},
        "Warning/error log statements executed, by level.");
    return *counter;
  }
  static Counter* counter = &MetricsRegistry::Default().GetCounter(
      "obiwan_log_messages_total", {{"level", "error"}},
      "Warning/error log statements executed, by level.");
  return *counter;
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

bool LogActive(LogLevel level) {
  if (level >= LogLevel::kWarning && level != LogLevel::kOff) {
    LogCounter(level).Inc();
  }
  const LogLevel threshold = GetLogLevel();
  return level >= threshold && threshold != LogLevel::kOff;
}

LogLine::LogLine(LogLevel level, std::string_view file, int line) {
  // Strip the directory part for readability.
  auto slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogLine::~LogLine() {
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace obiwan
