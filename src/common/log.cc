#include "common/log.h"

#include <atomic>

namespace obiwan {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_output_mutex;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GetLogLevel() && GetLogLevel() != LogLevel::kOff) {
  if (enabled_) {
    // Strip the directory part for readability.
    auto slash = file.rfind('/');
    if (slash != std::string_view::npos) file = file.substr(slash + 1);
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_output_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace obiwan
