#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "common/log.h"
#include "common/trace.h"

namespace obiwan {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_.push_back(1);
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(std::int64_t v) {
  if (v < 0) v = 0;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  const std::int64_t threshold =
      exemplar_threshold_.load(std::memory_order_relaxed);
  if (threshold >= 0 && v >= threshold) MaybeCaptureExemplar(v, idx);
}

void Histogram::SetExemplarThreshold(std::int64_t threshold) {
  exemplar_threshold_.store(threshold, std::memory_order_relaxed);
}

void Histogram::MaybeCaptureExemplar(std::int64_t v, std::size_t bucket) {
  const TraceId trace = TraceContext::Current();
  if (!trace.valid()) return;  // nothing to link the bucket back to
  std::unique_lock lock(exemplar_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // best-effort: never block the hot path
  Exemplar& slot = exemplar_ring_[exemplar_count_ % kExemplarSlots];
  slot.value = v;
  slot.bucket = bucket;
  slot.trace = trace;
  slot.span = SpanContext::Current();
  slot.seq = ++exemplar_count_;
}

std::vector<Histogram::Exemplar> Histogram::Exemplars() const {
  std::lock_guard lock(exemplar_mutex_);
  const std::uint64_t kept = std::min<std::uint64_t>(exemplar_count_,
                                                     kExemplarSlots);
  std::vector<Exemplar> out;
  out.reserve(kept);
  // Oldest retained first: the ring writes slot (seq - 1) % kExemplarSlots.
  for (std::uint64_t i = exemplar_count_ - kept; i < exemplar_count_; ++i) {
    out.push_back(exemplar_ring_[i % kExemplarSlots]);
  }
  return out;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// Shared percentile math for a live histogram and for merged bucket arrays
// (SummarizeHistograms, windowed deltas). `counts` has bounds.size() + 1
// entries.
double PercentileFromBucketCounts(const std::vector<std::int64_t>& bounds,
                                  const std::vector<std::uint64_t>& counts,
                                  std::uint64_t total, std::int64_t max,
                                  double p) {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i == bounds.size()) {
        // Overflow bucket has no upper bound; the exact max is tracked.
        return static_cast<double>(max);
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double fraction =
          std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      const double value = lower + fraction * (upper - lower);
      // Never report beyond the largest real observation.
      return std::min(value, static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

double Histogram::Percentile(double p) const {
  return PercentileFromBucketCounts(bounds_, BucketCounts(), Count(), Max(), p);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  std::lock_guard lock(exemplar_mutex_);
  exemplar_ring_.fill(Exemplar{});
  exemplar_count_ = 0;
}

std::vector<std::int64_t> ExponentialBuckets(std::int64_t start, double factor,
                                             int count) {
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(std::max(count, 1)));
  double v = static_cast<double>(std::max<std::int64_t>(start, 1));
  std::int64_t last = 0;
  for (int i = 0; i < count; ++i) {
    auto bound = static_cast<std::int64_t>(std::llround(v));
    if (bound <= last) bound = last + 1;  // keep strictly ascending
    bounds.push_back(bound);
    last = bound;
    v *= factor;
  }
  return bounds;
}

const std::vector<std::int64_t>& DefaultLatencyBuckets() {
  // 1 µs, 2 µs, ... ×2 up to ~8.6 s; RPC latencies on the paper's simulated
  // LAN (2.8 ms round trip) land mid-range.
  static const std::vector<std::int64_t> kBuckets =
      ExponentialBuckets(1'000, 2.0, 24);
  return kBuckets;
}

#ifndef OBIWAN_VERSION
#define OBIWAN_VERSION "unknown"
#endif
#ifndef OBIWAN_BUILD_FLAGS
#define OBIWAN_BUILD_FLAGS "unknown"
#endif

std::string_view BuildVersion() { return OBIWAN_VERSION; }
std::string_view BuildFlags() { return OBIWAN_BUILD_FLAGS; }

void RegisterBuildInfo(MetricsRegistry& registry) {
  registry
      .GetGauge("obiwan_build_info",
                {{"version", std::string(BuildVersion())},
                 {"flags", std::string(BuildFlags())}},
                "Constant 1; version/flags labels identify this build")
      .Set(1);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

std::string CanonicalLabelString(MetricLabels& labels) {
  std::sort(labels.begin(), labels.end());
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

namespace {
// Published by Default() before it binds the registry's own mutex, so code
// running inside that bind (BindLockStats) can identify the default registry
// without re-entering the still-initializing magic static.
std::atomic<MetricsRegistry*> g_default_live{nullptr};
}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    g_default_live.store(r, std::memory_order_release);
    // Instrument the registry's own lock — after construction, directly on
    // *r: the registrations go through the still-unbound mutex (plain
    // passthrough) and never re-enter Default(), so the magic static cannot
    // deadlock on itself. Once bound, lock telemetry is pure atomic updates
    // on the resolved handles — no registry lock taken, no self-recursion.
    r->mutex_.BindTo(*r, "metrics_registry");
    return r;
  }();
  return *registry;
}

MetricsRegistry* MetricsRegistry::DefaultIfLive() {
  return g_default_live.load(std::memory_order_acquire);
}

std::uint64_t MetricsRegistry::NextInstance() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::Find(std::string_view name,
                                              const std::string& label_str) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->label_str == label_str) {
      return entry.get();
    }
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::Register(std::string_view name,
                                                  MetricLabels labels,
                                                  Type type,
                                                  std::string_view help) {
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name);
  entry->label_str = CanonicalLabelString(labels);
  entry->labels = std::move(labels);
  entry->type = type;
  entry->help.assign(help);
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

// The type-mismatch error in the getters below is logged only after the
// registry lock is released: OBIWAN_LOG(kWarning|kError) feeds the
// obiwan_log_messages_total counters back through GetCounter, and logging
// under mutex_ would re-enter it.

Counter& MetricsRegistry::GetCounter(std::string_view name, MetricLabels labels,
                                     std::string_view help) {
  std::string label_str = CanonicalLabelString(labels);
  {
    std::lock_guard lock(mutex_);
    if (Entry* existing = Find(name, label_str)) {
      if (existing->type == Type::kCounter) return *existing->counter;
    } else {
      Entry& entry = Register(name, std::move(labels), Type::kCounter, help);
      entry.counter = std::make_unique<Counter>();
      return *entry.counter;
    }
  }
  OBIWAN_LOG(kError) << "metric '" << std::string(name)
                     << "' re-registered with a different type";
  static Counter* dummy = new Counter();
  return *dummy;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels,
                                 std::string_view help) {
  std::string label_str = CanonicalLabelString(labels);
  {
    std::lock_guard lock(mutex_);
    if (Entry* existing = Find(name, label_str)) {
      if (existing->type == Type::kGauge) return *existing->gauge;
    } else {
      Entry& entry = Register(name, std::move(labels), Type::kGauge, help);
      entry.gauge = std::make_unique<Gauge>();
      return *entry.gauge;
    }
  }
  OBIWAN_LOG(kError) << "metric '" << std::string(name)
                     << "' re-registered with a different type";
  static Gauge* dummy = new Gauge();
  return *dummy;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         MetricLabels labels,
                                         const std::vector<std::int64_t>& bounds,
                                         std::string_view help) {
  std::string label_str = CanonicalLabelString(labels);
  {
    std::lock_guard lock(mutex_);
    if (Entry* existing = Find(name, label_str)) {
      if (existing->type == Type::kHistogram) return *existing->histogram;
    } else {
      Entry& entry = Register(name, std::move(labels), Type::kHistogram, help);
      entry.histogram = std::make_unique<Histogram>(bounds);
      return *entry.histogram;
    }
  }
  OBIWAN_LOG(kError) << "metric '" << std::string(name)
                     << "' re-registered with a different type";
  static Histogram* dummy = new Histogram({1});
  return *dummy;
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->type) {
      case Type::kCounter: entry->counter->Reset(); break;
      case Type::kGauge: entry->gauge->Reset(); break;
      case Type::kHistogram: entry->histogram->Reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard lock(mutex_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return std::tie(a->name, a->label_str) < std::tie(b->name, b->label_str);
  });

  std::string out;
  for (const Entry* e : sorted) {
    switch (e->type) {
      case Type::kCounter:
        out += "counter " + e->name + e->label_str + " " +
               std::to_string(e->counter->Value()) + "\n";
        break;
      case Type::kGauge:
        out += "gauge " + e->name + e->label_str + " " +
               std::to_string(e->gauge->Value()) + "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *e->histogram;
        out += "histogram " + e->name + e->label_str +
               " count=" + std::to_string(h.Count()) +
               " sum=" + std::to_string(h.Sum()) +
               " p50=" + FormatDouble(h.P50()) +
               " p95=" + FormatDouble(h.P95()) +
               " p99=" + FormatDouble(h.P99()) +
               " max=" + std::to_string(h.Max()) + "\n";
        break;
      }
    }
  }
  return out;
}

namespace {

// name{existing,le="bound"} — splices a le label into a (possibly empty)
// canonical label string.
std::string WithLe(const std::string& name, const std::string& label_str,
                   const std::string& le) {
  if (label_str.empty()) return name + "{le=\"" + le + "\"}";
  std::string out = name + label_str;
  out.insert(out.size() - 1, ",le=\"" + le + "\"");
  return out;
}

// Prometheus text exposition escaping. Label values escape backslash, double
// quote, and newline; HELP text escapes backslash and newline only (the
// canonical label_str stays raw — it is the registry-internal identity key
// and feeds DumpText).
std::string PromEscape(const std::string& v, bool escape_quote) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"':
        if (escape_quote) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
  return out;
}

// Exposition name of a counter: Prometheus convention requires the _total
// suffix on counters, so names registered without one are normalized here
// (the registry-internal name — and DumpText/DumpJson — keep the raw name).
std::string PromCounterName(const std::string& name) {
  constexpr std::string_view kSuffix = "_total";
  if (name.size() >= kSuffix.size() &&
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
    return name;
  }
  return name + "_total";
}

// OpenMetrics exemplar suffix for one bucket line:
// ` # {trace_id="trace(1:7)",span_id="42"} <value>`. Appended to the
// `_bucket` series whose range the exemplar observation landed in, so a
// scraper (or a human) can jump from a fat tail bucket straight to the
// flight-recorder span with that trace id.
std::string PromExemplarSuffix(const Histogram::Exemplar& e) {
  std::string out = " # {trace_id=\"" +
                    PromEscape(ToString(e.trace), /*escape_quote=*/true) + "\"";
  if (e.span != 0) out += ",span_id=\"" + std::to_string(e.span) + "\"";
  out += "} " + std::to_string(e.value);
  return out;
}

// Most recent exemplar per bucket index, or empty when the histogram has
// captured none.
std::vector<const Histogram::Exemplar*> ExemplarPerBucket(
    const std::vector<Histogram::Exemplar>& exemplars, std::size_t buckets) {
  std::vector<const Histogram::Exemplar*> best(buckets, nullptr);
  for (const Histogram::Exemplar& e : exemplars) {
    if (e.bucket >= buckets) continue;
    if (best[e.bucket] == nullptr || e.seq > best[e.bucket]->seq) {
      best[e.bucket] = &e;
    }
  }
  return best;
}

// The entry's labels re-rendered with escaped values (labels are already in
// canonical sorted order from registration).
std::string PromLabelString(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += PromEscape(labels[i].second, /*escape_quote=*/true);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  std::lock_guard lock(mutex_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return std::tie(a->name, a->label_str) < std::tie(b->name, b->label_str);
  });

  std::string out;
  std::string last_name;
  for (const Entry* e : sorted) {
    const bool first_of_name = e->name != last_name;
    last_name = e->name;
    const std::string labels = PromLabelString(e->labels);
    switch (e->type) {
      case Type::kCounter: {
        const std::string prom_name = PromCounterName(e->name);
        if (first_of_name) {
          if (!e->help.empty()) {
            out += "# HELP " + prom_name + " " +
                   PromEscape(e->help, /*escape_quote=*/false) + "\n";
          }
          out += "# TYPE " + prom_name + " counter\n";
        }
        out += prom_name + labels + " " +
               std::to_string(e->counter->Value()) + "\n";
        break;
      }
      case Type::kGauge: {
        if (first_of_name) {
          if (!e->help.empty()) {
            out += "# HELP " + e->name + " " +
                   PromEscape(e->help, /*escape_quote=*/false) + "\n";
          }
          out += "# TYPE " + e->name + " gauge\n";
        }
        out += e->name + labels + " " +
               std::to_string(e->gauge->Value()) + "\n";
        break;
      }
      case Type::kHistogram: {
        if (first_of_name) {
          if (!e->help.empty()) {
            out += "# HELP " + e->name + " " +
                   PromEscape(e->help, /*escape_quote=*/false) + "\n";
          }
          out += "# TYPE " + e->name + " histogram\n";
        }
        const Histogram& h = *e->histogram;
        const auto counts = h.BucketCounts();
        const auto exemplars = h.Exemplars();
        const auto per_bucket = ExemplarPerBucket(exemplars, counts.size());
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out += WithLe(e->name + "_bucket", labels,
                        std::to_string(h.bounds()[i])) +
                 " " + std::to_string(cumulative);
          if (per_bucket[i] != nullptr) out += PromExemplarSuffix(*per_bucket[i]);
          out += "\n";
        }
        out += WithLe(e->name + "_bucket", labels, "+Inf") + " " +
               std::to_string(h.Count());
        if (per_bucket.back() != nullptr) {
          out += PromExemplarSuffix(*per_bucket.back());
        }
        out += "\n";
        out += e->name + "_sum" + labels + " " +
               std::to_string(h.Sum()) + "\n";
        out += e->name + "_count" + labels + " " +
               std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& e : entries_) {
    switch (e->type) {
      case Type::kCounter: {
        if (!counters.empty()) counters += ',';
        counters += "{\"name\":\"" + JsonEscape(e->name) +
                    "\",\"labels\":" + JsonLabels(e->labels) +
                    ",\"value\":" + std::to_string(e->counter->Value()) + "}";
        break;
      }
      case Type::kGauge: {
        if (!gauges.empty()) gauges += ',';
        gauges += "{\"name\":\"" + JsonEscape(e->name) +
                  "\",\"labels\":" + JsonLabels(e->labels) +
                  ",\"value\":" + std::to_string(e->gauge->Value()) + "}";
        break;
      }
      case Type::kHistogram: {
        const Histogram& h = *e->histogram;
        if (!histograms.empty()) histograms += ',';
        histograms += "{\"name\":\"" + JsonEscape(e->name) +
                      "\",\"labels\":" + JsonLabels(e->labels) +
                      ",\"count\":" + std::to_string(h.Count()) +
                      ",\"sum\":" + std::to_string(h.Sum()) +
                      ",\"max\":" + std::to_string(h.Max()) +
                      ",\"p50\":" + FormatDouble(h.P50()) +
                      ",\"p95\":" + FormatDouble(h.P95()) +
                      ",\"p99\":" + FormatDouble(h.P99()) + ",\"buckets\":[";
        const auto counts = h.BucketCounts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i != 0) histograms += ',';
          const std::string le = i < h.bounds().size()
                                     ? std::to_string(h.bounds()[i])
                                     : "\"+Inf\"";
          histograms += "{\"le\":" + le +
                        ",\"count\":" + std::to_string(counts[i]) + "}";
        }
        histograms += "],\"tail_exemplars\":[";
        const auto exemplars = h.Exemplars();
        for (std::size_t i = 0; i < exemplars.size(); ++i) {
          if (i != 0) histograms += ',';
          histograms += "{\"value\":" + std::to_string(exemplars[i].value) +
                        ",\"bucket\":" + std::to_string(exemplars[i].bucket) +
                        ",\"trace_id\":\"" + JsonEscape(ToString(exemplars[i].trace)) +
                        "\",\"span_id\":" + std::to_string(exemplars[i].span) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

namespace {

bool LabelsContain(const MetricLabels& labels, const MetricLabels& having) {
  for (const auto& want : having) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

HistogramSummary MetricsRegistry::SummarizeHistograms(
    std::string_view name, const MetricLabels& having) const {
  std::lock_guard lock(mutex_);
  HistogramSummary summary;
  const std::vector<std::int64_t>* bounds = nullptr;
  std::vector<std::uint64_t> merged;
  for (const auto& e : entries_) {
    if (e->type != Type::kHistogram || e->name != name) continue;
    if (!LabelsContain(e->labels, having)) continue;
    const Histogram& h = *e->histogram;
    if (bounds == nullptr) {
      bounds = &h.bounds();
      merged.assign(bounds->size() + 1, 0);
    } else if (h.bounds() != *bounds) {
      continue;  // incompatible series; skip rather than mis-merge
    }
    const auto counts = h.BucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) merged[i] += counts[i];
    summary.count += h.Count();
    summary.sum += h.Sum();
    summary.max = std::max(summary.max, h.Max());
  }
  if (bounds != nullptr) {
    summary.p50 =
        PercentileFromBucketCounts(*bounds, merged, summary.count, summary.max, 0.50);
    summary.p95 =
        PercentileFromBucketCounts(*bounds, merged, summary.count, summary.max, 0.95);
    summary.p99 =
        PercentileFromBucketCounts(*bounds, merged, summary.count, summary.max, 0.99);
  }
  return summary;
}

std::uint64_t MetricsRegistry::SumCounters(std::string_view name,
                                           const MetricLabels& having) const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (e->type != Type::kCounter || e->name != name) continue;
    if (!LabelsContain(e->labels, having)) continue;
    total += e->counter->Value();
  }
  return total;
}

std::int64_t MetricsRegistry::SumGauges(std::string_view name,
                                        const MetricLabels& having) const {
  std::lock_guard lock(mutex_);
  std::int64_t total = 0;
  for (const auto& e : entries_) {
    if (e->type != Type::kGauge || e->name != name) continue;
    if (!LabelsContain(e->labels, having)) continue;
    total += e->gauge->Value();
  }
  return total;
}

MergedHistogram MetricsRegistry::MergeHistograms(
    std::string_view name, const MetricLabels& having) const {
  std::lock_guard lock(mutex_);
  MergedHistogram merged;
  for (const auto& e : entries_) {
    if (e->type != Type::kHistogram || e->name != name) continue;
    if (!LabelsContain(e->labels, having)) continue;
    const Histogram& h = *e->histogram;
    if (merged.bounds.empty()) {
      merged.bounds = h.bounds();
      merged.counts.assign(merged.bounds.size() + 1, 0);
    } else if (h.bounds() != merged.bounds) {
      continue;  // incompatible series; skip rather than mis-merge
    }
    const auto counts = h.BucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) merged.counts[i] += counts[i];
    merged.count += h.Count();
    merged.sum += h.Sum();
    merged.max = std::max(merged.max, h.Max());
  }
  return merged;
}

std::vector<std::string> MetricsRegistry::LabelValues(
    std::string_view name, std::string_view key) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e->name != name) continue;
    for (const auto& [k, v] : e->labels) {
      if (k != key) continue;
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

}  // namespace obiwan
