// TraceCollector: merge the per-site tracers of a topology into one timeline
// ordered on the (virtual) clock, and export it as Chrome trace-event JSON.
//
// Every site in a simulated or real topology records events and spans on its
// own clock into its own Tracer (or a shared one). The collector is a cheap
// view over any number of tracers: MergedSpans()/MergedEvents() snapshot them
// all and sort on the begin timestamp, and ChromeTraceJson() renders the
// result in the trace-event format that chrome://tracing and Perfetto load
// directly:
//
//   - one "process" (pid) per site — pid 0 is the network / harness,
//   - one "thread" (tid) per distributed flow (TraceId), tid 0 for spans
//     recorded outside any flow,
//   - B/E duration events for spans (children clamped into their parent so
//     the viewer always sees a well-nested stack),
//   - instant events ("i") for the flat TraceEvents, and
//   - metadata events naming each process and flow.
//
// Timestamps are exported in microseconds on whatever clock the sites share;
// under VirtualClock the timeline shows the modelled network time.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace obiwan {

class TraceCollector {
 public:
  // The tracer must outlive the collector. Attaching the same tracer twice
  // duplicates its records.
  void Attach(const Tracer* tracer);

  // All spans / events across the attached tracers, sorted by begin time
  // (ties broken by span id, which is allocation-ordered).
  std::vector<Span> MergedSpans() const;
  std::vector<TraceEvent> MergedEvents() const;

  // Grep-friendly text timeline: merged events, then merged spans.
  std::string DumpText() const;

  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<const Tracer*> tracers_;
};

// Render an arbitrary span/event set as Chrome trace-event JSON (the
// collector and the flight recorder both go through this).
std::string ChromeTraceJson(std::vector<Span> spans,
                            std::vector<TraceEvent> events);

// Same, with extra entries for the file's top-level "otherData" object —
// (key, raw JSON value) pairs, e.g. a site's replica-table summary embedded
// in a flight-recorder dump. The value string must already be valid JSON.
std::string ChromeTraceJson(
    std::vector<Span> spans, std::vector<TraceEvent> events,
    const std::vector<std::pair<std::string, std::string>>& other_data);

}  // namespace obiwan
