// Status / Result error model for expected distributed failures.
//
// OBIWAN targets mobile wide-area networks where disconnection and remote
// faults are ordinary, anticipated outcomes (paper §1). Following the C++ Core
// Guidelines (E.14/E.28-adjacent advice: use error codes when failure is part
// of the contract), every fallible operation in the public API returns a
// Status or Result<T> instead of throwing. Exceptions appear only where no
// return channel exists (see obiwan::core::ObjectFaultError).
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace obiwan {

enum class StatusCode {
  kOk = 0,
  kDisconnected,      // link down between sites (voluntary or not)
  kTimeout,           // transport gave up waiting for a reply
  kNotFound,          // unknown name, object id, or class
  kAlreadyExists,     // duplicate bind / export
  kInvalidArgument,   // caller error
  kFailedPrecondition,// operation not legal in the current state
  kDataLoss,          // malformed or truncated wire data
  kConflict,          // concurrent-update conflict detected by a policy
  kUnimplemented,
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Value type describing the outcome of an operation.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "<code>: <message>" — for logs and error propagation.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline Status DisconnectedError(std::string msg) {
  return {StatusCode::kDisconnected, std::move(msg)};
}
inline Status TimeoutError(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExistsError(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status ConflictError(std::string msg) {
  return {StatusCode::kConflict, std::move(msg)};
}
inline Status UnimplementedError(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(state_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagate a non-ok Status from an expression that yields Status.
#define OBIWAN_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::obiwan::Status obiwan_status_ = (expr);          \
    if (!obiwan_status_.ok()) return obiwan_status_;   \
  } while (false)

// Evaluate an expression yielding Result<T>; on error return its Status,
// otherwise bind the value to `lhs`.
#define OBIWAN_ASSIGN_OR_RETURN(lhs, expr)              \
  OBIWAN_ASSIGN_OR_RETURN_IMPL_(                        \
      OBIWAN_STATUS_CONCAT_(obiwan_result_, __LINE__), lhs, expr)

#define OBIWAN_STATUS_CONCAT_INNER_(a, b) a##b
#define OBIWAN_STATUS_CONCAT_(a, b) OBIWAN_STATUS_CONCAT_INNER_(a, b)
#define OBIWAN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace obiwan
