// Byte-buffer aliases used by the wire format and transports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace obiwan {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline BytesView AsView(const Bytes& b) { return BytesView(b.data(), b.size()); }

}  // namespace obiwan
