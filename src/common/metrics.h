// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The paper's evaluation is entirely about measured behaviour (RMI vs. LMI
// latency, incremental vs. transitive-closure replication cost), so the
// reproduction treats per-operation instrumentation as core middleware rather
// than an afterthought. The design splits cost between two phases:
//
//   - Registration (GetCounter/GetGauge/GetHistogram) takes a mutex, interns
//     the (name, labels) pair and returns a stable handle. It happens once,
//     at subsystem construction time.
//   - Updates (Inc/Set/Observe) go through the pre-resolved handle and are
//     single relaxed atomic operations — cheap enough for the RMI hot path.
//
// Exporters (plain text, Prometheus text format, JSON for the bench harness)
// walk the registry under the mutex; they never block updates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/contention.h"
#include "common/ids.h"

namespace obiwan {

// Label set attached to a metric instance, e.g. {{"site", "1"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonic counter.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous value (table sizes, queue depths).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket counts
// v > bounds.back(). Negative observations clamp to the first bucket.
//
// Percentile(p) walks the cumulative distribution to the bucket containing
// rank p*count and interpolates linearly inside it (the first bucket
// interpolates from 0). Ranks landing in the overflow bucket return the
// exact tracked maximum, so p100 == Max() always holds.
class Histogram {
 public:
  // Tail exemplar: one observation at or above the exemplar threshold,
  // stamped with the TraceId/span id that was active on the observing thread
  // — the link from a fat histogram bucket back to the flight-recorder span
  // that produced it. Kept in a small ring (most recent kExemplarSlots);
  // capture is best-effort (skipped when the ring lock is contended or no
  // trace is active) so the hot path never blocks on it.
  static constexpr std::size_t kExemplarSlots = 8;
  struct Exemplar {
    std::int64_t value = 0;
    std::size_t bucket = 0;  // index into BucketCounts()
    TraceId trace;
    std::uint64_t span = 0;  // 0 when no span was open
    std::uint64_t seq = 0;   // capture order; larger = more recent
  };

  // `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t v);

  // Observations >= `threshold` capture an exemplar when a trace is active.
  // Negative disables (the default — exemplars are opt-in per histogram).
  void SetExemplarThreshold(std::int64_t threshold);
  std::int64_t exemplar_threshold() const {
    return exemplar_threshold_.load(std::memory_order_relaxed);
  }
  // Captured exemplars, most recent last. Empty when disabled or none hit.
  std::vector<Exemplar> Exemplars() const;

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Largest observation so far (0 when empty).
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  // p in [0, 1]. Returns 0 when empty.
  double Percentile(double p) const;
  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  // Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> BucketCounts() const;

  void Reset();

 private:
  void MaybeCaptureExemplar(std::int64_t v, std::size_t bucket);

  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};

  std::atomic<std::int64_t> exemplar_threshold_{-1};  // < 0 = disabled
  mutable std::mutex exemplar_mutex_;
  std::array<Exemplar, kExemplarSlots> exemplar_ring_;  // guarded by ^
  std::uint64_t exemplar_count_ = 0;                    // guarded by ^
};

// Shared percentile math over an explicit bucket-count array (`counts` has
// bounds.size() + 1 entries, last = overflow). This is the same walk
// Histogram::Percentile does; exported so windowed consumers (the /healthz
// lock-wait budget) can run it over *delta* counts between two snapshots.
double PercentileFromBucketCounts(const std::vector<std::int64_t>& bounds,
                                  const std::vector<std::uint64_t>& counts,
                                  std::uint64_t total, std::int64_t max,
                                  double p);

// `count` bucket bounds starting at `start`, each `factor` times the last.
std::vector<std::int64_t> ExponentialBuckets(std::int64_t start, double factor,
                                             int count);

// Build identity, baked in by the build system (OBIWAN_VERSION /
// OBIWAN_BUILD_FLAGS compile definitions; "unknown" otherwise).
std::string_view BuildVersion();
std::string_view BuildFlags();

// Default buckets for RPC latencies in nanoseconds: 1 µs .. ~8.6 s, ×2 steps.
const std::vector<std::int64_t>& DefaultLatencyBuckets();

// Merged view over several histogram series of one metric (e.g. the RPC
// latency of every site in the process). Produced by
// MetricsRegistry::SummarizeHistograms.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Raw merged buckets of one metric across matching series — the windowed
// consumers' building block (snapshot now, snapshot later, diff the counts,
// run PercentileFromBucketCounts over the delta).
struct MergedHistogram {
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
};

class MetricsRegistry {
 public:
  // Process-wide registry every subsystem registers into by default.
  static MetricsRegistry& Default();

  // The default registry if its construction has (at least) started, nullptr
  // before the first Default() call. BindLockStats identifies the default
  // registry through this instead of Default() because the default registry
  // binds its *own* mutex mid-construction — re-entering the magic static
  // there would throw recursive_init_error.
  static MetricsRegistry* DefaultIfLive();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Intern (name, labels) and return the stable handle; repeated calls with
  // the same identity return the same instance. A name registered under one
  // metric type cannot be re-registered under another — the mismatching call
  // gets a process-wide dummy metric (updates go nowhere) and an error log,
  // never a crash.
  Counter& GetCounter(std::string_view name, MetricLabels labels = {},
                      std::string_view help = "");
  Gauge& GetGauge(std::string_view name, MetricLabels labels = {},
                  std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, MetricLabels labels = {},
                          const std::vector<std::int64_t>& bounds =
                              DefaultLatencyBuckets(),
                          std::string_view help = "");

  // Zero every metric. Handles stay valid; registrations are kept.
  void Reset();

  std::size_t size() const;

  // One line per metric instance: "counter name{labels} value" /
  // "histogram name{labels} count=N p50=... p95=... p99=... max=...".
  std::string DumpText() const;

  // Prometheus text exposition format: # HELP/# TYPE metadata per family,
  // counters normalized to a _total suffix, histograms expanded to native
  // cumulative _bucket{le=...}/_sum/_count series (the percentile summaries
  // stay in the text exporter only — external aggregation recomputes
  // quantiles from the buckets). This is what the HTTP admin endpoint's
  // GET /metrics serves.
  std::string DumpPrometheus() const;

  // Machine-readable dump used by the bench harness:
  // {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string DumpJson() const;

  // Merge every histogram named `name` whose labels contain all of `having`
  // (subset match, so a bench can aggregate over per-site instances by op
  // label alone). Series with bucket bounds differing from the first match
  // are skipped. Returns a zero summary when nothing matches.
  HistogramSummary SummarizeHistograms(std::string_view name,
                                       const MetricLabels& having = {}) const;

  // Sum of every counter named `name` whose labels contain all of `having`.
  std::uint64_t SumCounters(std::string_view name,
                            const MetricLabels& having = {}) const;

  // Sum of every gauge named `name` whose labels contain all of `having`.
  std::int64_t SumGauges(std::string_view name,
                         const MetricLabels& having = {}) const;

  // Raw merged buckets (same matching/skip rules as SummarizeHistograms).
  MergedHistogram MergeHistograms(std::string_view name,
                                  const MetricLabels& having = {}) const;

  // Distinct values of label `key` across every metric named `name`, in
  // first-seen order — how the lock-hotness report enumerates lock sites
  // without a side table.
  std::vector<std::string> LabelValues(std::string_view name,
                                       std::string_view key) const;

  // Monotonic process-wide sequence, used to give per-instance metrics (two
  // sites with the same SiteId in one process) distinct label sets.
  static std::uint64_t NextInstance();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string label_str;  // canonical '{k="v",...}' form, "" when unlabeled
    MetricLabels labels;
    Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(std::string_view name, const std::string& label_str);
  Entry& Register(std::string_view name, MetricLabels labels, Type type,
                  std::string_view help);

  // Instrumented (obiwan_lock_* under name "metrics_registry") for the
  // Default() instance only — binding happens in Default() *after*
  // construction, so registering the lock's own metrics goes through the
  // still-unbound (passthrough) mutex and cannot recurse. Local registries
  // keep an untracked lock.
  mutable TrackedMutex mutex_;
  // Sorted by (name, label_str) at dump time; storage order is registration
  // order so handles are stable.
  std::vector<std::unique_ptr<Entry>> entries_;
};

// Register the constant obiwan_build_info{version,flags} = 1 gauge, the
// standard Prometheus idiom for detecting restarts and mixed-version fleets
// (join any series against it by instance). Idempotent.
void RegisterBuildInfo(MetricsRegistry& registry);

}  // namespace obiwan
