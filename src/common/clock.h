// Clock abstraction.
//
// The benchmark harness reproduces the paper's figures on a *simulated*
// network (see DESIGN.md, substitution 2). The simulated transport charges
// latency and transfer time against a VirtualClock instead of sleeping, which
// makes every experiment deterministic and fast while preserving the cost
// model. Production code paths take a Clock&, so the same code runs against
// SystemClock in real deployments.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace obiwan {

// Nanoseconds since an arbitrary epoch.
using Nanos = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos Now() const = 0;
  // Advance time by `d` (virtual clocks) or block for `d` (real clocks).
  virtual void Sleep(Nanos d) = 0;
  // Deterministic-concurrency hooks. A jumpable clock can be set to an
  // absolute instant, which lets a simulation model N concurrent activities
  // on one thread: run each activity sequentially from the same start time
  // and finish at the max, not the sum (see core/fanout.h). Real clocks are
  // not jumpable; callers fall back to actual threads.
  virtual bool Jumpable() const { return false; }
  virtual void JumpTo(Nanos) {}
};

class SystemClock final : public Clock {
 public:
  static SystemClock& Instance() {
    static SystemClock clock;
    return clock;
  }

  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void Sleep(Nanos d) override {
    if (d > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  }
};

// Deterministic clock advanced explicitly by the simulation.
class VirtualClock final : public Clock {
 public:
  Nanos Now() const override { return now_; }
  void Sleep(Nanos d) override {
    if (d > 0) now_ += d;
  }
  bool Jumpable() const override { return true; }
  void JumpTo(Nanos t) override { now_ = t; }
  void Reset() { now_ = 0; }

 private:
  Nanos now_ = 0;
};

inline constexpr Nanos kMicro = 1'000;
inline constexpr Nanos kMilli = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

}  // namespace obiwan
