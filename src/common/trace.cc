#include "common/trace.h"

#include <algorithm>

namespace obiwan {

std::string TraceEvent::ToString() const {
  return "[" + std::to_string(static_cast<double>(at) / kMilli) + "ms site " +
         std::to_string(site) + "] " + category +
         (detail.empty() ? "" : ": " + detail);
}

void Tracer::Record(Nanos at, SiteId site, std::string_view category,
                    std::string detail) {
  std::lock_guard lock(mutex_);
  TraceEvent& slot = ring_[total_ % capacity_];
  slot.at = at;
  slot.site = site;
  slot.category.assign(category);
  slot.detail = std::move(detail);
  ++total_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  const std::uint64_t count = std::min<std::uint64_t>(total_, capacity_);
  out.reserve(count);
  const std::uint64_t start = total_ - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard lock(mutex_);
  total_ = 0;
}

std::string Tracer::Dump() const {
  std::string out;
  for (const TraceEvent& event : Snapshot()) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace obiwan
