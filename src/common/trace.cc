#include "common/trace.h"

#include <algorithm>

namespace obiwan {

// ---------------------------------------------------------------------------
// TraceContext / SpanContext
// ---------------------------------------------------------------------------

namespace {
thread_local TraceId g_current_trace;
thread_local std::uint64_t g_current_span = 0;
}  // namespace

TraceId TraceContext::Current() { return g_current_trace; }

TraceId TraceContext::NewId(SiteId origin) {
  static std::atomic<std::uint64_t> next{1};
  return TraceId{origin, next.fetch_add(1, std::memory_order_relaxed)};
}

TraceId TraceContext::Exchange(TraceId id) {
  TraceId previous = g_current_trace;
  g_current_trace = id;
  return previous;
}

std::uint64_t SpanContext::Current() { return g_current_span; }

std::uint64_t SpanContext::NextId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SpanContext::Exchange(std::uint64_t id) {
  std::uint64_t previous = g_current_span;
  g_current_span = id;
  return previous;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

std::string TraceEvent::ToString() const {
  std::string out = "[" + std::to_string(static_cast<double>(at) / kMilli) +
                    "ms site " + std::to_string(site) + "] " + category +
                    (detail.empty() ? "" : ": " + detail);
  if (trace.valid()) {
    out += " #" + std::to_string(trace.site) + ":" + std::to_string(trace.seq);
  }
  return out;
}

std::string Span::ToString() const {
  std::string out = "[" + std::to_string(static_cast<double>(begin) / kMilli) +
                    "ms +" +
                    std::to_string(static_cast<double>(duration()) / kMilli) +
                    "ms site " + std::to_string(site) + "] span " +
                    std::to_string(id) + (parent != 0 ? "<-" + std::to_string(parent) : "") +
                    " " + category + (name.empty() ? "" : ": " + name);
  if (failed) out += " FAILED";
  if (trace.valid()) {
    out += " #" + std::to_string(trace.site) + ":" + std::to_string(trace.seq);
  }
  return out;
}

void Tracer::LockAll() const {
  for (TrackedMutex& m : stripes_) m.lock();
}

void Tracer::UnlockAll() const {
  for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) it->unlock();
}

void Tracer::Record(Nanos at, SiteId site, std::string_view category,
                    std::string_view detail, TraceId trace) {
  // Reserve the slot without any lock; only the write into it is serialized,
  // and only against recorders that hash to the same stripe.
  const std::uint64_t seq = total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(seq % capacity_);
  std::lock_guard lock(StripeFor(slot));
  TraceEvent& entry = ring_[slot];
  entry.at = at;
  entry.site = site;
  entry.trace = trace;
  // assign() reuses each slot's existing string capacity, so a warm ring
  // records without allocating.
  entry.category.assign(category);
  entry.detail.assign(detail);
}

void Tracer::RecordSpan(const Span& span) {
  const std::uint64_t seq = span_total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(seq % capacity_);
  std::lock_guard lock(StripeFor(slot));
  Span& entry = span_ring_[slot];
  entry.id = span.id;
  entry.parent = span.parent;
  entry.trace = span.trace;
  entry.site = span.site;
  entry.begin = span.begin;
  entry.end = span.end;
  entry.category.assign(span.category);
  entry.name.assign(span.name);
  entry.failed = span.failed;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  LockAll();
  std::vector<TraceEvent> out;
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  const std::uint64_t count = std::min<std::uint64_t>(total, capacity_);
  out.reserve(count);
  const std::uint64_t start = total - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  UnlockAll();
  return out;
}

std::vector<TraceEvent> Tracer::SnapshotTrace(TraceId trace) const {
  std::vector<TraceEvent> out = Snapshot();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const TraceEvent& e) { return e.trace != trace; }),
            out.end());
  return out;
}

std::vector<Span> Tracer::SnapshotSpans() const {
  LockAll();
  std::vector<Span> out;
  const std::uint64_t total = span_total_.load(std::memory_order_relaxed);
  const std::uint64_t count = std::min<std::uint64_t>(total, capacity_);
  out.reserve(count);
  const std::uint64_t start = total - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(span_ring_[(start + i) % capacity_]);
  }
  UnlockAll();
  return out;
}

std::vector<Span> Tracer::SnapshotTraceSpans(TraceId trace) const {
  std::vector<Span> out = SnapshotSpans();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Span& s) { return s.trace != trace; }),
            out.end());
  return out;
}

void Tracer::Clear() {
  LockAll();
  total_.store(0, std::memory_order_relaxed);
  span_total_.store(0, std::memory_order_relaxed);
  UnlockAll();
}

std::string Tracer::Dump() const {
  std::string out;
  for (const TraceEvent& event : Snapshot()) {
    out += event.ToString();
    out += '\n';
  }
  for (const Span& span : SnapshotSpans()) {
    out += span.ToString();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// SpanScope
// ---------------------------------------------------------------------------

SpanScope::SpanScope(const TraceSinks* sinks, Clock& clock, SiteId site,
                     std::string_view category, std::string_view name,
                     TraceId trace) {
  if (sinks == nullptr || !sinks->active()) return;  // inactive: a no-op
  sinks_ = sinks;
  clock_ = &clock;
  span_.id = SpanContext::NextId();
  span_.parent = SpanContext::Exchange(span_.id);
  span_.trace = trace;
  span_.site = site;
  span_.begin = clock.Now();
  span_.category.assign(category);
  span_.name.assign(name);
}

SpanScope::~SpanScope() {
  if (sinks_ == nullptr) return;
  SpanContext::Exchange(span_.parent);
  span_.end = clock_->Now();
  sinks_->RecordSpan(span_);
}

}  // namespace obiwan
