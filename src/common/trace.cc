#include "common/trace.h"

#include <algorithm>
#include <atomic>

namespace obiwan {

// ---------------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------------

namespace {
thread_local TraceId g_current_trace;
}  // namespace

TraceId TraceContext::Current() { return g_current_trace; }

TraceId TraceContext::NewId(SiteId origin) {
  static std::atomic<std::uint64_t> next{1};
  return TraceId{origin, next.fetch_add(1, std::memory_order_relaxed)};
}

TraceId TraceContext::Exchange(TraceId id) {
  TraceId previous = g_current_trace;
  g_current_trace = id;
  return previous;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

std::string TraceEvent::ToString() const {
  std::string out = "[" + std::to_string(static_cast<double>(at) / kMilli) +
                    "ms site " + std::to_string(site) + "] " + category +
                    (detail.empty() ? "" : ": " + detail);
  if (trace.valid()) {
    out += " #" + std::to_string(trace.site) + ":" + std::to_string(trace.seq);
  }
  return out;
}

void Tracer::Record(Nanos at, SiteId site, std::string_view category,
                    std::string_view detail, TraceId trace) {
  std::lock_guard lock(mutex_);
  TraceEvent& slot = ring_[total_ % capacity_];
  slot.at = at;
  slot.site = site;
  slot.trace = trace;
  // assign() reuses each slot's existing string capacity, so a warm ring
  // records without allocating.
  slot.category.assign(category);
  slot.detail.assign(detail);
  ++total_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  const std::uint64_t count = std::min<std::uint64_t>(total_, capacity_);
  out.reserve(count);
  const std::uint64_t start = total_ - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::SnapshotTrace(TraceId trace) const {
  std::vector<TraceEvent> out = Snapshot();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const TraceEvent& e) { return e.trace != trace; }),
            out.end());
  return out;
}

void Tracer::Clear() {
  std::lock_guard lock(mutex_);
  total_ = 0;
}

std::string Tracer::Dump() const {
  std::string out;
  for (const TraceEvent& event : Snapshot()) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace obiwan
