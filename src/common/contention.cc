#include "common/contention.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>
#include <utility>

#include "common/metrics.h"

namespace obiwan {

const std::vector<std::int64_t>& LockLatencyBuckets() {
  static const std::vector<std::int64_t> kBuckets =
      ExponentialBuckets(100, 2.0, 26);
  return kBuckets;
}

namespace {

// Lock waits this long while a trace is active capture an exemplar: long
// enough to skip scheduler noise, short enough that any genuine pile-up on
// the site mutex links back to the flight recorder.
constexpr Nanos kLockWaitExemplarThreshold = 100 * kMicro;

struct BoundStats {
  const MetricsRegistry* registry;
  std::string name;
  LockStats* stats;
};

// All LockStats ever bound, for (a) handle reuse on the process-default
// registry and (b) keeping the allocations reachable (no leak reports).
// Non-default registries get fresh handles per bind instead of cache hits: a
// test-local registry's address can be reused after it dies, and a stale
// cache entry would hand out dangling handles.
std::mutex g_bind_mutex;
std::vector<BoundStats>* g_bound = nullptr;

}  // namespace

LockStats* BindLockStats(MetricsRegistry& registry, const char* name) {
  // DefaultIfLive, not Default(): this very function runs inside Default()'s
  // initializer when the default registry binds its own mutex, and the magic
  // static must not be re-entered there.
  const bool cacheable = &registry == MetricsRegistry::DefaultIfLive();
  {
    std::lock_guard lock(g_bind_mutex);
    if (g_bound == nullptr) g_bound = new std::vector<BoundStats>();
    if (cacheable) {
      for (const BoundStats& b : *g_bound) {
        if (b.registry == &registry && b.name == name) return b.stats;
      }
    }
  }

  // Registrations run outside g_bind_mutex: GetHistogram takes the registry
  // lock, and for the default registry that lock's own binding goes through
  // here — same-thread re-entry on g_bind_mutex would deadlock. (It cannot
  // actually recurse — the registry binds itself exactly once, pre-bind —
  // but the lock ordering stays trivially clean this way.)
  auto* stats = new LockStats();
  const MetricLabels labels{{"name", name}};
  stats->wait = &registry.GetHistogram(
      "obiwan_lock_wait_ns", labels, LockLatencyBuckets(),
      "Time threads spent blocked acquiring this lock");
  stats->wait->SetExemplarThreshold(kLockWaitExemplarThreshold);
  stats->hold = &registry.GetHistogram(
      "obiwan_lock_hold_ns", labels, LockLatencyBuckets(),
      "Lock hold time, outermost acquisition to final release");
  stats->contended = &registry.GetCounter(
      "obiwan_lock_contended_total", labels,
      "Acquisitions that found the lock held and had to block");
  stats->acquisitions = &registry.GetCounter(
      "obiwan_lock_acquisitions_total", labels, "All lock acquisitions");
  stats->waiters = &registry.GetGauge(
      "obiwan_lock_waiters", labels, "Threads currently blocked on this lock");

  std::lock_guard lock(g_bind_mutex);
  if (cacheable) {
    // Another thread may have bound the same name while we registered;
    // reuse its handles (GetHistogram interning made ours identical anyway).
    for (const BoundStats& b : *g_bound) {
      if (b.registry == &registry && b.name == name) {
        delete stats;
        return b.stats;
      }
    }
  }
  g_bound->push_back(BoundStats{&registry, name, stats});
  return stats;
}

#ifndef OBIWAN_NO_LOCK_TELEMETRY

template <typename MutexT>
void TrackedMutexImpl<MutexT>::Configure(const char* name, Clock& clock) {
  BindTo(MetricsRegistry::Default(), name, clock);
}

template <typename MutexT>
void TrackedMutexImpl<MutexT>::BindTo(MetricsRegistry& registry,
                                      const char* name, Clock& clock) {
  clock_ = &clock;
  stats_.store(BindLockStats(registry, name), std::memory_order_release);
}

template <typename MutexT>
void TrackedMutexImpl<MutexT>::Acquired(const LockStats* stats) {
  if (stats != nullptr) stats->acquisitions->Inc();
  if (++depth_ == 1) {
    hold_timed_ = stats != nullptr;
    if (hold_timed_) held_since_ = clock_->Now();
  }
}

template <typename MutexT>
void TrackedMutexImpl<MutexT>::lock() {
  const LockStats* stats = stats_.load(std::memory_order_acquire);
  if (stats == nullptr) {
    mutex_.lock();
  } else if (mutex_.try_lock()) {
    // Uncontended: no clock reads beyond the hold timestamp.
  } else {
    stats->contended->Inc();
    // The wait timestamp is read *before* announcing the waiter, so a test
    // that observes obiwan_lock_waiters == 1 knows the blocked thread is
    // done reading the clock and may advance a virtual one deterministically.
    const Nanos wait_start = clock_->Now();
    stats->waiters->Add(1);
    mutex_.lock();
    stats->waiters->Add(-1);
    stats->wait->Observe(clock_->Now() - wait_start);
  }
  Acquired(stats);
}

template <typename MutexT>
bool TrackedMutexImpl<MutexT>::try_lock() {
  if (!mutex_.try_lock()) return false;
  Acquired(stats_.load(std::memory_order_acquire));
  return true;
}

template <typename MutexT>
void TrackedMutexImpl<MutexT>::unlock() {
  Nanos held = -1;
  const LockStats* stats = stats_.load(std::memory_order_acquire);
  if (--depth_ == 0 && hold_timed_) {
    held = clock_->Now() - held_since_;
    hold_timed_ = false;
  }
  // Observe only after releasing: the histogram update must not stretch the
  // measured hold time or the critical section itself.
  mutex_.unlock();
  if (held >= 0 && stats != nullptr) stats->hold->Observe(held);
}

template class TrackedMutexImpl<std::mutex>;
template class TrackedMutexImpl<std::recursive_mutex>;

#endif  // OBIWAN_NO_LOCK_TELEMETRY

std::vector<LockSiteReport> LockHotness(const MetricsRegistry& registry,
                                        std::size_t top_k) {
  std::vector<LockSiteReport> rows;
  for (const std::string& name :
       registry.LabelValues("obiwan_lock_wait_ns", "name")) {
    const MetricLabels having{{"name", name}};
    LockSiteReport row;
    row.name = name;
    const HistogramSummary wait =
        registry.SummarizeHistograms("obiwan_lock_wait_ns", having);
    row.wait_total_ns = wait.sum;
    row.wait_max_ns = wait.max;
    row.wait_p99_ns = wait.p99;
    row.hold_total_ns =
        registry.SummarizeHistograms("obiwan_lock_hold_ns", having).sum;
    row.acquisitions =
        registry.SumCounters("obiwan_lock_acquisitions_total", having);
    row.contended = registry.SumCounters("obiwan_lock_contended_total", having);
    row.waiters = registry.SumGauges("obiwan_lock_waiters", having);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const LockSiteReport& a, const LockSiteReport& b) {
              return std::tie(b.wait_total_ns, a.name) <
                     std::tie(a.wait_total_ns, b.name);
            });
  if (rows.size() > top_k) rows.resize(top_k);
  return rows;
}

std::string LockHotnessText(const std::vector<LockSiteReport>& report) {
  std::string out =
      "lock hotness (by total wait):\n"
      "  name                 acquisitions  contended      wait_ms   "
      "p99_wait_us      hold_ms  waiters\n";
  for (const LockSiteReport& row : report) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-20s %12" PRIu64 " %10" PRIu64 " %12.3f %13.1f %12.3f %8" PRId64
                  "\n",
                  row.name.c_str(), row.acquisitions, row.contended,
                  static_cast<double>(row.wait_total_ns) / kMilli,
                  row.wait_p99_ns / kMicro,
                  static_cast<double>(row.hold_total_ns) / kMilli, row.waiters);
    out += line;
  }
  if (report.empty()) out += "  (no tracked locks bound)\n";
  return out;
}

double LockWaitWindow::WindowP99() {
  const MergedHistogram merged =
      registry_.MergeHistograms("obiwan_lock_wait_ns");
  if (merged.bounds.empty()) return 0;

  std::lock_guard lock(mutex_);
  if (bounds_ != merged.bounds || last_counts_.size() != merged.counts.size()) {
    // First call (or the bucket layout changed): baseline, report quiet.
    bounds_ = merged.bounds;
    last_counts_ = merged.counts;
    return 0;
  }
  std::vector<std::uint64_t> delta(merged.counts.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    // Saturating: Reset() between windows must not underflow.
    delta[i] = merged.counts[i] >= last_counts_[i]
                   ? merged.counts[i] - last_counts_[i]
                   : 0;
    total += delta[i];
  }
  last_counts_ = merged.counts;
  // merged.max is all-time, not windowed; the percentile walk only uses it
  // for ranks landing in the overflow bucket, where it is the right bound.
  return PercentileFromBucketCounts(bounds_, delta, total, merged.max, 0.99);
}

}  // namespace obiwan
