// Identity types shared across the OBIWAN stack.
//
// Every process ("site" in the paper's vocabulary) has a SiteId; every master
// object exported by a site gets an ObjectId that is globally unique because it
// embeds the creating site. Proxy-in entries (the provider-side half of a
// proxy pair, paper §2) get ProxyIds scoped the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace obiwan {

using SiteId = std::uint32_t;

inline constexpr SiteId kInvalidSite = 0;  // site ids start at 1

// Globally unique identity of a *master* object. Replicas of the same master
// on other sites share the master's ObjectId — this is what makes identity
// preservation (no duplicate replicas of one master) checkable.
struct ObjectId {
  SiteId site = kInvalidSite;  // site that created / owns the master
  std::uint64_t local = 0;     // per-site counter, starts at 1

  bool valid() const { return site != kInvalidSite && local != 0; }

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const ObjectId& id) {
  return os << "obj(" << id.site << ":" << id.local << ")";
}

inline std::string ToString(const ObjectId& id) {
  return "obj(" + std::to_string(id.site) + ":" + std::to_string(id.local) + ")";
}

// Identity of a proxy-in registered in a provider's exporter table. One is
// created per boundary reference during incremental replication (or one per
// cluster in cluster mode, §2.2 / §4.3).
struct ProxyId {
  SiteId site = kInvalidSite;  // provider site holding the proxy-in
  std::uint64_t local = 0;

  bool valid() const { return site != kInvalidSite && local != 0; }

  friend bool operator==(const ProxyId&, const ProxyId&) = default;
  friend auto operator<=>(const ProxyId&, const ProxyId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const ProxyId& id) {
  return os << "pin(" << id.site << ":" << id.local << ")";
}

// Correlation id of one distributed flow (an RMI, a fault cascade, a
// reintegration). Allocated at the call origin, carried in the request
// envelope across every hop, and recorded with each site's trace events so a
// merged timeline can be filtered back down to a single end-to-end flow.
struct TraceId {
  SiteId site = kInvalidSite;  // site that originated the flow
  std::uint64_t seq = 0;       // per-process counter, starts at 1

  bool valid() const { return site != kInvalidSite && seq != 0; }

  friend bool operator==(const TraceId&, const TraceId&) = default;
  friend auto operator<=>(const TraceId&, const TraceId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const TraceId& id) {
  return os << "trace(" << id.site << ":" << id.seq << ")";
}

inline std::string ToString(const TraceId& id) {
  return "trace(" + std::to_string(id.site) + ":" + std::to_string(id.seq) + ")";
}

struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return std::hash<std::uint64_t>{}((std::uint64_t{id.site} << 40) ^ id.local);
  }
};

struct ProxyIdHash {
  std::size_t operator()(const ProxyId& id) const {
    return std::hash<std::uint64_t>{}((std::uint64_t{id.site} << 40) ^
                                      (id.local * 0x9E3779B97F4A7C15ull));
  }
};

}  // namespace obiwan
