// Event tracing: a fixed-capacity ring buffer of protocol events, plus the
// cross-site correlation context.
//
// Distributed flows (a fault cascading through a replica chain, an
// invalidation fan-out) are hard to reconstruct from logs of interleaved
// sites. A Tracer can be attached to any number of sites; each records its
// protocol events (faults, gets, puts, calls, invalidations) with the site id
// and a timestamp from its own clock, and Snapshot() returns the merged,
// chronological view. The ring never allocates after construction beyond the
// event strings themselves (slot strings are reused in place), and a site
// without a tracer pays one pointer compare per event.
//
// Cross-site correlation: every event additionally carries the TraceId of the
// distributed flow it belongs to. The id is allocated at the call origin
// (TraceContext::NewId), travels in the RMI request envelope
// (rmi/protocol.h), and is re-installed by the receiving dispatcher for the
// duration of the handler — so a get served three sites down a replica chain
// still records under the id of the fault that started it.
// SnapshotTrace(id) filters the merged timeline back down to one flow.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"

namespace obiwan {

struct TraceEvent {
  Nanos at = 0;
  SiteId site = kInvalidSite;
  TraceId trace;         // invalid when the event belongs to no remote flow
  std::string category;  // "fault", "get", "put", "call", "invalidate", ...
  std::string detail;

  std::string ToString() const;
};

// Per-thread correlation context. The dispatcher installs the envelope's id
// around each inbound handler; client-side operations install a fresh id when
// none is active. Scopes nest (synchronous loopback delivery re-enters sites
// on the same thread) and restore the previous id on destruction.
class TraceContext {
 public:
  // The id active on this thread; invalid when outside any flow.
  static TraceId Current();

  // Allocate a fresh id originating at `origin` (does not install it).
  static TraceId NewId(SiteId origin);

  // The active id, or a fresh one originating at `origin`.
  static TraceId CurrentOrNew(SiteId origin) {
    TraceId id = Current();
    return id.valid() ? id : NewId(origin);
  }

  class Scope {
   public:
    explicit Scope(TraceId id) : previous_(Exchange(id)) {}
    ~Scope() { Exchange(previous_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceId previous_;
  };

 private:
  static TraceId Exchange(TraceId id);
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  void Record(Nanos at, SiteId site, std::string_view category,
              std::string_view detail, TraceId trace = {});

  // Events in arrival order (oldest first). The `dropped` counter tells how
  // many older events the ring already evicted.
  std::vector<TraceEvent> Snapshot() const;

  // Only the events of one distributed flow, in arrival order — the
  // reconstruction of a single end-to-end RMI/fault/reintegration cascade.
  std::vector<TraceEvent> SnapshotTrace(TraceId trace) const;

  std::uint64_t dropped() const {
    std::lock_guard lock(mutex_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
  }

  std::uint64_t total_recorded() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

  void Clear();

  // Render the snapshot as text, one event per line.
  std::string Dump() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // events ever recorded
};

}  // namespace obiwan
