// Event tracing: a fixed-capacity ring buffer of protocol events.
//
// Distributed flows (a fault cascading through a replica chain, an
// invalidation fan-out) are hard to reconstruct from logs of interleaved
// sites. A Tracer can be attached to any number of sites; each records its
// protocol events (faults, gets, puts, calls, invalidations) with the site id
// and a timestamp from its own clock, and Snapshot() returns the merged,
// chronological view. The ring never allocates after construction beyond the
// event strings themselves, and a site without a tracer pays one pointer
// compare per event.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"

namespace obiwan {

struct TraceEvent {
  Nanos at = 0;
  SiteId site = kInvalidSite;
  std::string category;  // "fault", "get", "put", "call", "invalidate", ...
  std::string detail;

  std::string ToString() const;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  void Record(Nanos at, SiteId site, std::string_view category,
              std::string detail);

  // Events in arrival order (oldest first). The `dropped` counter tells how
  // many older events the ring already evicted.
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t dropped() const {
    std::lock_guard lock(mutex_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
  }

  std::uint64_t total_recorded() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

  void Clear();

  // Render the snapshot as text, one event per line.
  std::string Dump() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // events ever recorded
};

}  // namespace obiwan
