// Event + span tracing: fixed-capacity rings of protocol events and causal
// spans, plus the cross-site correlation context.
//
// Distributed flows (a fault cascading through a replica chain, an
// invalidation fan-out) are hard to reconstruct from logs of interleaved
// sites. A Tracer can be attached to any number of sites; each records its
// protocol events (faults, gets, puts, calls, invalidations) with the site id
// and a timestamp from its own clock, and Snapshot() returns the merged,
// chronological view. The rings never allocate after construction beyond the
// event strings themselves (slot strings are reused in place), and a site
// without a tracer pays one pointer compare per event.
//
// Cross-site correlation: every event additionally carries the TraceId of the
// distributed flow it belongs to. The id is allocated at the call origin
// (TraceContext::NewId), travels in the RMI request envelope
// (rmi/protocol.h), and is re-installed by the receiving dispatcher for the
// duration of the handler — so a get served three sites down a replica chain
// still records under the id of the fault that started it.
// SnapshotTrace(id) filters the merged timeline back down to one flow.
//
// Spans add causality and duration on top of the flat events: a Span is a
// begin/end interval with a process-unique id and the id of the span that was
// open on the same thread when it began. The paper's cascade — RMI → fault →
// get → put — therefore records as a parent/child tree, and because the
// TraceId rides the envelope, a remote dispatch records as (part of) the flow
// of the originating call. TraceCollector (trace_collector.h) merges spans
// from many tracers into one timeline and exports Chrome trace-event JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/contention.h"
#include "common/ids.h"
#include "common/status.h"

namespace obiwan {

struct TraceEvent {
  Nanos at = 0;
  SiteId site = kInvalidSite;
  TraceId trace;         // invalid when the event belongs to no remote flow
  std::string category;  // "fault", "get", "put", "call", "invalidate", ...
  std::string detail;

  std::string ToString() const;
};

// A completed causal span: one timed step of a distributed cascade. `parent`
// is the span that was open on the same thread when this one began (0 = no
// enclosing span); with synchronous in-process delivery that links a server
// handler under its originating client call, and across real transports the
// shared TraceId still groups both sides into one flow.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  TraceId trace;  // the distributed flow, as carried by the envelope
  SiteId site = kInvalidSite;
  Nanos begin = 0;
  Nanos end = 0;
  std::string category;  // "rmi", "dispatch", "fault", "get", "put", ...
  std::string name;
  bool failed = false;

  Nanos duration() const { return end > begin ? end - begin : 0; }
  std::string ToString() const;
};

// Per-thread correlation context. The dispatcher installs the envelope's id
// around each inbound handler; client-side operations install a fresh id when
// none is active. Scopes nest (synchronous loopback delivery re-enters sites
// on the same thread) and restore the previous id on destruction.
class TraceContext {
 public:
  // The id active on this thread; invalid when outside any flow.
  static TraceId Current();

  // Allocate a fresh id originating at `origin` (does not install it).
  static TraceId NewId(SiteId origin);

  // The active id, or a fresh one originating at `origin`.
  static TraceId CurrentOrNew(SiteId origin) {
    TraceId id = Current();
    return id.valid() ? id : NewId(origin);
  }

  class Scope {
   public:
    explicit Scope(TraceId id) : previous_(Exchange(id)) {}
    ~Scope() { Exchange(previous_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceId previous_;
  };

 private:
  static TraceId Exchange(TraceId id);
};

// Per-thread span parenting: the id of the innermost open span, maintained by
// SpanScope. Separate from TraceContext because a flow spans many spans.
class SpanContext {
 public:
  static std::uint64_t Current();  // 0 when no span is open on this thread
  static std::uint64_t NextId();   // process-unique, never 0

 private:
  friend class SpanScope;
  static std::uint64_t Exchange(std::uint64_t id);
};

class Tracer {
 public:
  // `capacity` bounds both rings (events and spans) independently.
  explicit Tracer(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
    span_ring_.resize(capacity_);
    // All rings share one "tracer_ring" lock family: stripe contention is a
    // recording-throughput ceiling worth watching, but per-stripe series
    // would be cardinality noise.
    for (auto& stripe : stripes_) stripe.Configure("tracer_ring");
  }

  void Record(Nanos at, SiteId site, std::string_view category,
              std::string_view detail, TraceId trace = {});

  // Record a *completed* span (SpanScope does this from its destructor).
  void RecordSpan(const Span& span);

  // Events in arrival order (oldest first). The `dropped` counter tells how
  // many older events the ring already evicted.
  std::vector<TraceEvent> Snapshot() const;

  // Only the events of one distributed flow, in arrival order — the
  // reconstruction of a single end-to-end RMI/fault/reintegration cascade.
  std::vector<TraceEvent> SnapshotTrace(TraceId trace) const;

  // Completed spans in completion order (oldest first).
  std::vector<Span> SnapshotSpans() const;
  std::vector<Span> SnapshotTraceSpans(TraceId trace) const;

  std::uint64_t dropped() const {
    const std::uint64_t total = total_.load(std::memory_order_relaxed);
    return total > capacity_ ? total - capacity_ : 0;
  }
  std::uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_dropped() const {
    const std::uint64_t total = span_total_.load(std::memory_order_relaxed);
    return total > capacity_ ? total - capacity_ : 0;
  }
  std::uint64_t spans_recorded() const {
    return span_total_.load(std::memory_order_relaxed);
  }

  void Clear();

  // Render the snapshot as text: events first, then completed spans.
  std::string Dump() const;

 private:
  // Slot reservation is a relaxed atomic increment; only the write into the
  // reserved slot is serialized, and only against writers hashing to the same
  // lock stripe — concurrent recorders on different slots no longer contend
  // on one global mutex. A snapshot taken while a writer sits between
  // reservation and write may transiently see the slot's previous content;
  // the flight-recorder use case (post-mortem dumps of quiesced rings) never
  // observes this.
  static constexpr std::size_t kStripes = 16;
  TrackedMutex& StripeFor(std::size_t slot) const {
    return stripes_[slot % kStripes];
  }
  void LockAll() const;
  void UnlockAll() const;

  const std::size_t capacity_;
  mutable std::array<TrackedMutex, kStripes> stripes_;
  std::vector<TraceEvent> ring_;
  std::vector<Span> span_ring_;
  std::atomic<std::uint64_t> total_{0};       // events ever recorded
  std::atomic<std::uint64_t> span_total_{0};  // spans ever recorded
};

// Fan-out handle: a site records through one of these so its always-on
// flight-recorder ring and an optionally attached shared tracer both see
// every event and span. Copyable view semantics; the tracers must outlive
// any recording through the sinks.
class TraceSinks {
 public:
  void SetFlight(Tracer* tracer) { flight_ = tracer; }
  void SetAttached(Tracer* tracer) { attached_ = tracer; }
  Tracer* attached() const { return attached_; }
  bool active() const { return flight_ != nullptr || attached_ != nullptr; }

  void Record(Nanos at, SiteId site, std::string_view category,
              std::string_view detail, TraceId trace = {}) const {
    if (flight_ != nullptr) flight_->Record(at, site, category, detail, trace);
    if (attached_ != nullptr) {
      attached_->Record(at, site, category, detail, trace);
    }
  }
  void RecordSpan(const Span& span) const {
    if (flight_ != nullptr) flight_->RecordSpan(span);
    if (attached_ != nullptr) attached_->RecordSpan(span);
  }

 private:
  Tracer* flight_ = nullptr;
  Tracer* attached_ = nullptr;
};

// RAII span: begins on construction, completes (and records into `sinks`) on
// destruction. Maintains the thread's parent chain via SpanContext. A null or
// inactive sinks makes the scope a no-op — no id is allocated and the parent
// chain is left untouched, so children attach to the enclosing span.
class SpanScope {
 public:
  SpanScope(const TraceSinks* sinks, Clock& clock, SiteId site,
            std::string_view category, std::string_view name,
            TraceId trace);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void MarkFailed() { span_.failed = true; }
  std::uint64_t id() const { return span_.id; }

 private:
  const TraceSinks* sinks_ = nullptr;  // null when inactive
  Clock* clock_ = nullptr;
  Span span_;
};

}  // namespace obiwan
