// Minimal leveled logging. Off by default so tests and benches stay quiet;
// applications enable it with obiwan::SetLogLevel.
//
// OBIWAN_LOG(level) << ... is lazy: when the level is disabled the statement
// reduces to one atomic level load (plus one counter increment for
// warning/error) — no ostringstream is constructed and the streamed
// expressions are never evaluated. Every kWarning / kError statement that
// executes — emitted to stderr or not — increments
// obiwan_log_messages_total{level=...} in the metrics registry, so error
// bursts show up in exported metrics even in quiet configurations.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace obiwan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Counts warning/error statements into the metrics registry and reports
// whether the level is currently emitted. Called once per OBIWAN_LOG
// statement, before any stream machinery exists.
bool LogActive(LogLevel level);

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the LogLine expression in the enabled arm of the macro's ternary
// so both arms have type void. operator& binds looser than operator<<, so
// the whole streamed chain is built first.
struct LogVoidify {
  void operator&(const LogLine&) const {}
};

}  // namespace internal
}  // namespace obiwan

#define OBIWAN_LOG(level)                                          \
  !::obiwan::internal::LogActive(::obiwan::LogLevel::level)        \
      ? (void)0                                                    \
      : ::obiwan::internal::LogVoidify() &                         \
            ::obiwan::internal::LogLine(::obiwan::LogLevel::level, \
                                        __FILE__, __LINE__)
