// Minimal leveled logging. Off by default so tests and benches stay quiet;
// applications enable it with obiwan::SetLogLevel.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace obiwan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace obiwan

#define OBIWAN_LOG(level) \
  ::obiwan::internal::LogLine(::obiwan::LogLevel::level, __FILE__, __LINE__)
