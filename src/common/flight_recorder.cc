#include "common/flight_recorder.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/log.h"
#include "common/trace_collector.h"

namespace obiwan {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked singleton
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  if (const char* path = std::getenv("OBIWAN_FLIGHT_DUMP");
      path != nullptr && path[0] != '\0') {
    dump_path_ = path;
  }
}

void FlightRecorder::Register(SiteId site, Tracer* tracer, StateProvider state) {
  if (tracer == nullptr) return;
  std::lock_guard lock(mutex_);
  tracers_.push_back(Entry{site, tracer, std::move(state)});
}

void FlightRecorder::Unregister(Tracer* tracer) {
  std::lock_guard lock(mutex_);
  tracers_.erase(std::remove_if(tracers_.begin(), tracers_.end(),
                                [&](const Entry& e) { return e.tracer == tracer; }),
                 tracers_.end());
}

std::string FlightRecorder::RenderLocked() const {
  TraceCollector collector;
  std::vector<std::pair<std::string, std::string>> other_data;
  for (const Entry& e : tracers_) {
    collector.Attach(e.tracer);
    if (e.state) {
      other_data.emplace_back("site " + std::to_string(e.site) + " state",
                              e.state());
    }
  }
  // Tracer snapshots take only the tracer's own stripe locks, and state
  // providers take their site's lock; holding the registry mutex across the
  // render keeps Unregister from racing us. (No site ever triggers a dump
  // while holding its own lock, so the FR-mutex -> site-lock order here
  // cannot invert.)
  return obiwan::ChromeTraceJson(collector.MergedSpans(),
                                 collector.MergedEvents(), other_data);
}

std::string FlightRecorder::ChromeTraceJson() const {
  std::lock_guard lock(mutex_);
  return RenderLocked();
}

Status FlightRecorder::WriteDump(const std::string& path) const {
  std::string json;
  {
    std::lock_guard lock(mutex_);
    json = RenderLocked();
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot open trace file: " + path);
  out << json;
  out.flush();
  if (!out) return InternalError("failed writing trace file: " + path);
  return Status::Ok();
}

void FlightRecorder::ArmDumpOnFailure(std::string path) {
  std::lock_guard lock(mutex_);
  dump_path_ = std::move(path);
}

bool FlightRecorder::armed() const {
  std::lock_guard lock(mutex_);
  return !dump_path_.empty();
}

void FlightRecorder::NotifyFailure(std::string_view reason) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard lock(mutex_);
    if (dump_path_.empty()) return;
    path.swap(dump_path_);  // disarm: one dump per arming
  }
  const Status status = WriteDump(path);
  if (status.ok()) {
    OBIWAN_LOG(kWarning) << "flight recorder: dumped last spans to " << path
                         << " after failure: " << std::string(reason);
  } else {
    OBIWAN_LOG(kError) << "flight recorder: dump to " << path
                       << " failed: " << status.ToString();
  }
}

}  // namespace obiwan
