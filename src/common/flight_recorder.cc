#include "common/flight_recorder.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"
#include "common/trace_collector.h"

namespace obiwan {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked singleton
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  if (const char* path = std::getenv("OBIWAN_FLIGHT_DUMP");
      path != nullptr && path[0] != '\0') {
    dump_path_ = path;
  }
}

void FlightRecorder::Register(SiteId site, Tracer* tracer) {
  if (tracer == nullptr) return;
  std::lock_guard lock(mutex_);
  tracers_.emplace_back(site, tracer);
}

void FlightRecorder::Unregister(Tracer* tracer) {
  std::lock_guard lock(mutex_);
  tracers_.erase(std::remove_if(tracers_.begin(), tracers_.end(),
                                [&](const auto& e) { return e.second == tracer; }),
                 tracers_.end());
}

std::string FlightRecorder::ChromeTraceJson() const {
  TraceCollector collector;
  std::lock_guard lock(mutex_);
  for (const auto& [site, tracer] : tracers_) {
    (void)site;
    collector.Attach(tracer);
  }
  // Tracer snapshots take only the tracer's own stripe locks; holding the
  // registry mutex across the render keeps Unregister from racing us.
  return collector.ChromeTraceJson();
}

Status FlightRecorder::WriteDump(const std::string& path) const {
  TraceCollector collector;
  std::lock_guard lock(mutex_);
  for (const auto& [site, tracer] : tracers_) {
    (void)site;
    collector.Attach(tracer);
  }
  return collector.WriteChromeTrace(path);
}

void FlightRecorder::ArmDumpOnFailure(std::string path) {
  std::lock_guard lock(mutex_);
  dump_path_ = std::move(path);
}

bool FlightRecorder::armed() const {
  std::lock_guard lock(mutex_);
  return !dump_path_.empty();
}

void FlightRecorder::NotifyFailure(std::string_view reason) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard lock(mutex_);
    if (dump_path_.empty()) return;
    path.swap(dump_path_);  // disarm: one dump per arming
  }
  const Status status = WriteDump(path);
  if (status.ok()) {
    OBIWAN_LOG(kWarning) << "flight recorder: dumped last spans to " << path
                         << " after failure: " << std::string(reason);
  } else {
    OBIWAN_LOG(kError) << "flight recorder: dump to " << path
                       << " failed: " << status.ToString();
  }
}

}  // namespace obiwan
