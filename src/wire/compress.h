// Byte-oriented LZ compression (LZ4-style block format).
//
// The paper's whole premise is narrow links — "OBIWAN attempts to minimize
// bandwidth and connection time" (§5) — and replication batches of similar
// objects compress extremely well (repeated class names, descriptors, and
// payload patterns). This module provides the codec; net/compressed.h wraps
// any transport with it.
//
// Format: varint(uncompressed_size) followed by LZ4-like sequences:
//   token byte: high nibble = literal count, low nibble = match length - 4
//               (15 in either nibble = continue with 255-extension bytes)
//   <literals> <2-byte little-endian match offset, if a match follows>
// The final sequence carries literals only. Decompression is hostile-input
// safe: every read and copy is bounds-checked and corrupt input yields
// kDataLoss, never UB.
#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace obiwan::wire {

// Compress `input`. Always succeeds; worst case grows by ~1/255 + token
// overhead (incompressible data is emitted as literal runs).
Bytes Compress(BytesView input);

// Decompress; fails with kDataLoss on malformed input or if the output would
// exceed `max_output` bytes (guard against decompression bombs).
Result<Bytes> Decompress(BytesView input, std::size_t max_output = 256 << 20);

}  // namespace obiwan::wire
