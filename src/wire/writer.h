// Binary wire format: Writer.
//
// This is the reproduction's stand-in for Java serialization (DESIGN.md,
// substitution 3): a compact, portable, little-endian format with varint
// compression for counts and ids. Everything that crosses a site boundary —
// RMI arguments, replica state, proxy descriptors — goes through this module,
// so the size-dependent costs the paper measures (transfer time, serialization
// time) are real here too.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/bytes.h"

namespace obiwan::wire {

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void U8(std::uint8_t v) { buf_.push_back(v); }

  void U16(std::uint16_t v) { AppendLE(v); }
  void U32(std::uint32_t v) { AppendLE(v); }
  void U64(std::uint64_t v) { AppendLE(v); }

  void Bool(bool v) { U8(v ? 1 : 0); }

  // LEB128 unsigned varint.
  void Varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  // Zigzag-encoded signed varint.
  void Svarint(std::int64_t v) {
    Varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void F32(float v) { U32(std::bit_cast<std::uint32_t>(v)); }

  // Length-prefixed UTF-8 string.
  void String(std::string_view s) {
    Varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Length-prefixed opaque bytes.
  void Blob(BytesView b) {
    Varint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  // Raw bytes, no length prefix (caller manages framing).
  void Raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  std::size_t size() const { return buf_.size(); }
  const Bytes& data() const& { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLE(T v) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

}  // namespace obiwan::wire
