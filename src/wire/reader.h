// Binary wire format: Reader.
//
// The Reader uses a *sticky error* model: any read past the end of the buffer
// (or a malformed varint) marks the reader failed, and every subsequent read
// returns a zero value. Decoders are therefore written as straight-line code
// and check reader.status() once at the end — truncated or corrupt network
// data can never crash the process, it surfaces as kDataLoss.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace obiwan::wire {

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t U16() { return ReadLE<std::uint16_t>(); }
  std::uint32_t U32() { return ReadLE<std::uint32_t>(); }
  std::uint64_t U64() { return ReadLE<std::uint64_t>(); }

  bool Bool() { return U8() != 0; }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift >= 64 || !Require(1)) {
        Fail("malformed varint");
        return 0;
      }
      std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t Svarint() {
    std::uint64_t raw = Varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  double F64() { return std::bit_cast<double>(U64()); }
  float F32() { return std::bit_cast<float>(U32()); }

  std::string String() {
    std::uint64_t n = Varint();
    if (!Require(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes Blob() {
    std::uint64_t n = Varint();
    if (!Require(n)) return {};
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  // View into the payload without copying; valid while the source buffer is.
  BytesView BlobView() {
    std::uint64_t n = Varint();
    if (!Require(n)) return {};
    BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  bool AtEnd() const { return failed_ || pos_ == data_.size(); }

  bool ok() const { return !failed_; }
  Status status() const {
    return failed_ ? DataLossError(error_) : Status::Ok();
  }

  // Decoders call this to report semantically invalid content (e.g. an
  // unknown enum value); it poisons the reader like a truncation would.
  void Fail(std::string reason) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(reason);
    }
  }

 private:
  bool Require(std::uint64_t n) {
    if (failed_) return false;
    if (data_.size() - pos_ < n) {
      Fail("truncated input (need " + std::to_string(n) + " bytes, have " +
           std::to_string(data_.size() - pos_) + ")");
      return false;
    }
    return true;
  }

  template <typename T>
  T ReadLE() {
    static_assert(std::is_unsigned_v<T>);
    if (!Require(sizeof(T))) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace obiwan::wire
