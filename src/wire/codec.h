// Codec<T>: compile-time marshalling traits.
//
// This is half of the obicomp substitute (DESIGN.md, substitution 3): where the
// Java prototype used reflection to serialize any value, here a Codec<T>
// specialization describes how each type crosses the wire. Built-ins cover the
// scalar and standard-container types an application realistically passes as
// RMI arguments or stores in shareable-object fields; applications add
// specializations for their own value types.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::wire {

template <typename T>
struct Codec;  // primary template intentionally undefined

// A type is WireCodable if Codec<T> provides Encode/Decode with the expected
// shapes. This is the constraint the RMI layer places on method signatures.
template <typename T>
concept WireCodable = requires(Writer& w, Reader& r, const T& v) {
  { Codec<std::remove_cvref_t<T>>::Encode(w, v) };
  { Codec<std::remove_cvref_t<T>>::Decode(r) } -> std::same_as<std::remove_cvref_t<T>>;
};

template <typename T>
void Encode(Writer& w, const T& v) {
  Codec<std::remove_cvref_t<T>>::Encode(w, v);
}

template <typename T>
T Decode(Reader& r) {
  return Codec<std::remove_cvref_t<T>>::Decode(r);
}

// --- scalars -----------------------------------------------------------------

template <>
struct Codec<bool> {
  static void Encode(Writer& w, bool v) { w.Bool(v); }
  static bool Decode(Reader& r) { return r.Bool(); }
};

template <typename T>
  requires(std::unsigned_integral<T> && !std::same_as<T, bool>)
struct Codec<T> {
  static void Encode(Writer& w, T v) { w.Varint(v); }
  static T Decode(Reader& r) {
    std::uint64_t raw = r.Varint();
    if (raw > std::numeric_limits<T>::max()) {
      r.Fail("unsigned value out of range for destination type");
      return 0;
    }
    return static_cast<T>(raw);
  }
};

template <typename T>
  requires std::signed_integral<T>
struct Codec<T> {
  static void Encode(Writer& w, T v) { w.Svarint(v); }
  static T Decode(Reader& r) {
    std::int64_t raw = r.Svarint();
    if (raw > std::int64_t{std::numeric_limits<T>::max()} ||
        raw < std::int64_t{std::numeric_limits<T>::min()}) {
      r.Fail("signed value out of range for destination type");
      return 0;
    }
    return static_cast<T>(raw);
  }
};

template <>
struct Codec<double> {
  static void Encode(Writer& w, double v) { w.F64(v); }
  static double Decode(Reader& r) { return r.F64(); }
};

template <>
struct Codec<float> {
  static void Encode(Writer& w, float v) { w.F32(v); }
  static float Decode(Reader& r) { return r.F32(); }
};

template <>
struct Codec<std::string> {
  static void Encode(Writer& w, const std::string& v) { w.String(v); }
  static std::string Decode(Reader& r) { return r.String(); }
};

// --- ids ---------------------------------------------------------------------

template <>
struct Codec<ObjectId> {
  static void Encode(Writer& w, const ObjectId& v) {
    w.Varint(v.site);
    w.Varint(v.local);
  }
  static ObjectId Decode(Reader& r) {
    ObjectId id;
    id.site = static_cast<SiteId>(r.Varint());
    id.local = r.Varint();
    return id;
  }
};

template <>
struct Codec<ProxyId> {
  static void Encode(Writer& w, const ProxyId& v) {
    w.Varint(v.site);
    w.Varint(v.local);
  }
  static ProxyId Decode(Reader& r) {
    ProxyId id;
    id.site = static_cast<SiteId>(r.Varint());
    id.local = r.Varint();
    return id;
  }
};

template <>
struct Codec<TraceId> {
  static void Encode(Writer& w, const TraceId& v) {
    w.Varint(v.site);
    w.Varint(v.seq);
  }
  static TraceId Decode(Reader& r) {
    TraceId id;
    id.site = static_cast<SiteId>(r.Varint());
    id.seq = r.Varint();
    return id;
  }
};

// --- containers ----------------------------------------------------------------

// Bytes (= std::vector<std::uint8_t>) gets the compact Blob form.
template <>
struct Codec<Bytes> {
  static void Encode(Writer& w, const Bytes& v) { w.Blob(AsView(v)); }
  static Bytes Decode(Reader& r) { return r.Blob(); }
};

template <WireCodable T>
  requires(!std::same_as<T, std::uint8_t>)
struct Codec<std::vector<T>> {
  static void Encode(Writer& w, const std::vector<T>& v) {
    w.Varint(v.size());
    for (const T& e : v) wire::Encode(w, e);
  }
  static std::vector<T> Decode(Reader& r) {
    std::uint64_t n = r.Varint();
    std::vector<T> v;
    // Guard against hostile length prefixes: never pre-reserve more entries
    // than the remaining payload could possibly encode (>=1 byte each).
    if (n > r.remaining()) {
      if (n != 0) {
        r.Fail("container length exceeds remaining payload");
        return v;
      }
    }
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      v.push_back(wire::Decode<T>(r));
    }
    return v;
  }
};

template <WireCodable T>
struct Codec<std::optional<T>> {
  static void Encode(Writer& w, const std::optional<T>& v) {
    w.Bool(v.has_value());
    if (v) wire::Encode(w, *v);
  }
  static std::optional<T> Decode(Reader& r) {
    if (!r.Bool()) return std::nullopt;
    return wire::Decode<T>(r);
  }
};

template <WireCodable A, WireCodable B>
struct Codec<std::pair<A, B>> {
  static void Encode(Writer& w, const std::pair<A, B>& v) {
    wire::Encode(w, v.first);
    wire::Encode(w, v.second);
  }
  static std::pair<A, B> Decode(Reader& r) {
    A a = wire::Decode<A>(r);
    B b = wire::Decode<B>(r);
    return {std::move(a), std::move(b)};
  }
};

template <WireCodable K, WireCodable V>
struct Codec<std::map<K, V>> {
  static void Encode(Writer& w, const std::map<K, V>& m) {
    w.Varint(m.size());
    for (const auto& [k, v] : m) {
      wire::Encode(w, k);
      wire::Encode(w, v);
    }
  }
  static std::map<K, V> Decode(Reader& r) {
    std::uint64_t n = r.Varint();
    std::map<K, V> m;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      K k = wire::Decode<K>(r);
      V v = wire::Decode<V>(r);
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }
};

template <WireCodable K, WireCodable V>
struct Codec<std::unordered_map<K, V>> {
  static void Encode(Writer& w, const std::unordered_map<K, V>& m) {
    w.Varint(m.size());
    for (const auto& [k, v] : m) {
      wire::Encode(w, k);
      wire::Encode(w, v);
    }
  }
  static std::unordered_map<K, V> Decode(Reader& r) {
    std::uint64_t n = r.Varint();
    std::unordered_map<K, V> m;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      K k = wire::Decode<K>(r);
      V v = wire::Decode<V>(r);
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }
};

// --- tuples (RMI argument packs) ---------------------------------------------

template <WireCodable... Ts>
struct Codec<std::tuple<Ts...>> {
  static void Encode(Writer& w, const std::tuple<Ts...>& t) {
    std::apply([&](const Ts&... vs) { (wire::Encode(w, vs), ...); }, t);
  }
  static std::tuple<Ts...> Decode(Reader& r) {
    // Braced init guarantees left-to-right evaluation of the decodes.
    return std::tuple<Ts...>{wire::Decode<Ts>(r)...};
  }
};

}  // namespace obiwan::wire
