#include "wire/compress.h"

#include <cstring>

#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::wire {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline std::uint32_t Load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t HashOf(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLength(Bytes& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

void EmitSequence(Bytes& out, const std::uint8_t* literals, std::size_t lit_len,
                  std::size_t match_len, std::size_t offset) {
  std::uint8_t token = 0;
  token |= static_cast<std::uint8_t>(std::min<std::size_t>(lit_len, 15)) << 4;
  if (match_len > 0) {
    token |= static_cast<std::uint8_t>(std::min(match_len - kMinMatch,
                                                std::size_t{15}));
  }
  out.push_back(token);
  if (lit_len >= 15) EmitLength(out, lit_len - 15);
  out.insert(out.end(), literals, literals + lit_len);
  if (match_len > 0) {
    out.push_back(static_cast<std::uint8_t>(offset));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (match_len - kMinMatch >= 15) EmitLength(out, match_len - kMinMatch - 15);
  }
}

}  // namespace

Bytes Compress(BytesView input) {
  Writer header;
  header.Varint(input.size());
  Bytes out = std::move(header).Take();
  if (input.empty()) return out;

  const std::uint8_t* base = input.data();
  const std::size_t size = input.size();
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  // Position table for 4-byte hashes; 0 means empty (position 0 handled by
  // storing pos + 1).
  std::vector<std::uint32_t> table(1u << kHashBits, 0);

  while (size >= kMinMatch && pos + kMinMatch <= size) {
    std::uint32_t h = HashOf(Load32(base + pos));
    std::size_t candidate = table[h];
    table[h] = static_cast<std::uint32_t>(pos + 1);

    if (candidate != 0) {
      std::size_t cand_pos = candidate - 1;
      std::size_t offset = pos - cand_pos;
      if (offset > 0 && offset <= kMaxOffset &&
          Load32(base + cand_pos) == Load32(base + pos)) {
        // Extend the match.
        std::size_t match_len = kMinMatch;
        while (pos + match_len < size &&
               base[cand_pos + match_len] == base[pos + match_len]) {
          ++match_len;
        }
        EmitSequence(out, base + literal_start, pos - literal_start, match_len,
                     offset);
        pos += match_len;
        literal_start = pos;
        continue;
      }
    }
    ++pos;
  }

  // Trailing literals (possibly the whole input).
  EmitSequence(out, base + literal_start, size - literal_start, 0, 0);
  return out;
}

Result<Bytes> Decompress(BytesView input, std::size_t max_output) {
  Reader r(input);
  std::uint64_t expected = r.Varint();
  if (!r.ok()) return DataLossError("compressed stream: bad size header");
  if (expected > max_output) {
    return DataLossError("compressed stream: declared size exceeds limit");
  }

  Bytes out;
  out.reserve(expected);
  std::size_t pos = input.size() - r.remaining();

  auto read_extended = [&](std::size_t base_len) -> Result<std::size_t> {
    std::size_t len = base_len;
    while (true) {
      if (pos >= input.size()) return DataLossError("truncated length");
      std::uint8_t b = input[pos++];
      len += b;
      if (b != 255) return len;
      if (len > max_output) return DataLossError("length overflow");
    }
  };

  while (pos < input.size()) {
    std::uint8_t token = input[pos++];
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) {
      OBIWAN_ASSIGN_OR_RETURN(lit_len, read_extended(15));
    }
    if (pos + lit_len > input.size()) {
      return DataLossError("compressed stream: literal run past end");
    }
    if (out.size() + lit_len > expected) {
      return DataLossError("compressed stream: output overrun (literals)");
    }
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
               input.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;

    if (pos == input.size()) break;  // final sequence: literals only

    if (pos + 2 > input.size()) {
      return DataLossError("compressed stream: truncated match offset");
    }
    std::size_t offset = input[pos] | (std::size_t{input[pos + 1]} << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return DataLossError("compressed stream: match offset out of range");
    }

    std::size_t match_len = token & 0x0F;
    if (match_len == 15) {
      OBIWAN_ASSIGN_OR_RETURN(match_len, read_extended(15));
    }
    match_len += kMinMatch;
    if (out.size() + match_len > expected) {
      return DataLossError("compressed stream: output overrun (match)");
    }
    // Byte-by-byte copy: overlapping matches (offset < len) are the RLE case
    // and must replicate already-written output.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }

  if (out.size() != expected) {
    return DataLossError("compressed stream: size mismatch (" +
                         std::to_string(out.size()) + " vs declared " +
                         std::to_string(expected) + ")");
  }
  return out;
}

}  // namespace obiwan::wire
