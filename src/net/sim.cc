#include "net/sim.h"

namespace obiwan::net {

std::unique_ptr<SimTransport> SimNetwork::CreateEndpoint(const Address& address) {
  auto endpoint = std::unique_ptr<SimTransport>(new SimTransport(this, address));
  Status s = Register(address, endpoint.get());
  if (!s.ok()) return nullptr;
  return endpoint;
}

Status SimNetwork::Register(const Address& address, SimTransport* endpoint) {
  auto [it, inserted] = endpoints_.emplace(address, endpoint);
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("endpoint already bound: " + address);
  }
  return Status::Ok();
}

void SimNetwork::Unregister(const Address& address) { endpoints_.erase(address); }

void SimNetwork::SetEndpointUp(const Address& address, bool up) {
  endpoint_down_[address] = !up;
}

void SimNetwork::SetLinkUp(const Address& a, const Address& b, bool up) {
  link_down_[PairKeyOf(a, b)] = !up;
}

void SimNetwork::SetLinkParams(const Address& a, const Address& b,
                               LinkParams params) {
  link_params_[PairKeyOf(a, b)] = params;
}

const LinkParams& SimNetwork::LinkFor(const Address& a, const Address& b) const {
  auto it = link_params_.find(PairKeyOf(a, b));
  return it != link_params_.end() ? it->second : default_link_;
}

bool SimNetwork::LinkUp(const Address& a, const Address& b) const {
  auto down = [this](const Address& addr) {
    auto it = endpoint_down_.find(addr);
    return it != endpoint_down_.end() && it->second;
  };
  if (down(a) || down(b)) return false;
  auto it = link_down_.find(PairKeyOf(a, b));
  return it == link_down_.end() || !it->second;
}

bool SimNetwork::ChargeMessage(const LinkParams& link, std::size_t bytes) {
  Nanos cost = link.OneWayCost(bytes);
  if (link.jitter > 0) {
    cost += static_cast<Nanos>(rng_() % static_cast<std::uint64_t>(link.jitter));
  }
  clock_.Sleep(cost);
  if (link.drop_probability > 0) {
    double u = static_cast<double>(rng_()) /
               static_cast<double>(std::mt19937_64::max());
    if (u < link.drop_probability) return false;
  }
  return true;
}

Result<Bytes> SimNetwork::Deliver(const Address& from, const Address& to,
                                  BytesView request) {
  if (!LinkUp(from, to)) {
    telemetry_.OnFailure();
    return DisconnectedError("link down: " + from + " -> " + to);
  }
  SimTransport* dest = nullptr;
  if (auto it = endpoints_.find(to); it != endpoints_.end()) dest = it->second;
  if (dest == nullptr || dest->handler_ == nullptr) {
    telemetry_.OnFailure();
    return NotFoundError("no endpoint serving at " + to);
  }

  const LinkParams& link = LinkFor(from, to);
  telemetry_.OnRequest(request.size());
  if (!ChargeMessage(link, request.size())) {
    telemetry_.OnFailure();
    return TimeoutError("request dropped: " + from + " -> " + to);
  }

  Result<Bytes> reply = dest->handler_->HandleRequest(from, request);
  if (!reply.ok()) {
    telemetry_.OnFailure();
    return reply;
  }

  telemetry_.OnReply(reply->size());
  // A disconnection during the reply flight is indistinguishable from a
  // request-side failure to the caller; model it the same way.
  if (!LinkUp(from, to)) {
    telemetry_.OnFailure();
    return DisconnectedError("link down during reply: " + to + " -> " + from);
  }
  if (!ChargeMessage(link, reply->size())) {
    telemetry_.OnFailure();
    return TimeoutError("reply dropped: " + to + " -> " + from);
  }
  return reply;
}

SimTransport::~SimTransport() { network_->Unregister(address_); }

Result<Bytes> SimTransport::Request(const Address& to, BytesView request) {
  return network_->Deliver(address_, to, request);
}

Status SimTransport::Serve(MessageHandler* handler) {
  handler_ = handler;
  return Status::Ok();
}

void SimTransport::StopServing() { handler_ = nullptr; }

}  // namespace obiwan::net
