#include "net/sim.h"

namespace obiwan::net {

std::unique_ptr<SimTransport> SimNetwork::CreateEndpoint(const Address& address) {
  auto endpoint = std::unique_ptr<SimTransport>(new SimTransport(this, address));
  Status s = Register(address, endpoint.get());
  if (!s.ok()) return nullptr;
  return endpoint;
}

Status SimNetwork::Register(const Address& address, SimTransport* endpoint) {
  auto [it, inserted] = endpoints_.emplace(address, endpoint);
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("endpoint already bound: " + address);
  }
  return Status::Ok();
}

void SimNetwork::Unregister(const Address& address) { endpoints_.erase(address); }

void SimNetwork::SetEndpointUp(const Address& address, bool up) {
  endpoint_down_[address] = !up;
  if (sinks_.active()) {
    sinks_.Record(clock_.Now(), kInvalidSite, "net.link",
                  "endpoint " + address + (up ? " up" : " down"));
  }
}

void SimNetwork::SetLinkUp(const Address& a, const Address& b, bool up) {
  link_down_[PairKeyOf(a, b)] = !up;
  if (sinks_.active()) {
    sinks_.Record(clock_.Now(), kInvalidSite, "net.link",
                  "link " + a + " <-> " + b + (up ? " up" : " down"));
  }
}

void SimNetwork::SetLinkParams(const Address& a, const Address& b,
                               LinkParams params) {
  link_params_[PairKeyOf(a, b)] = params;
}

const LinkParams& SimNetwork::LinkFor(const Address& a, const Address& b) const {
  auto it = link_params_.find(PairKeyOf(a, b));
  return it != link_params_.end() ? it->second : default_link_;
}

bool SimNetwork::LinkUp(const Address& a, const Address& b) const {
  auto down = [this](const Address& addr) {
    auto it = endpoint_down_.find(addr);
    return it != endpoint_down_.end() && it->second;
  };
  if (down(a) || down(b)) return false;
  auto it = link_down_.find(PairKeyOf(a, b));
  return it == link_down_.end() || !it->second;
}

SimNetwork::Charge SimNetwork::ChargeMessage(const LinkParams& link,
                                             std::size_t bytes,
                                             Nanos deadline_at) {
  Nanos cost = link.OneWayCost(bytes);
  if (link.jitter > 0) {
    cost += static_cast<Nanos>(rng_() % static_cast<std::uint64_t>(link.jitter));
  }
  // A flight that would land past the deadline times out *at* the deadline:
  // the waiting caller gives up then, not when the bytes would have arrived.
  if (deadline_at >= 0 && clock_.Now() + cost > deadline_at) {
    clock_.Sleep(deadline_at - clock_.Now());
    return Charge::kDeadline;
  }
  clock_.Sleep(cost);
  if (link.drop_probability > 0) {
    double u = static_cast<double>(rng_()) /
               static_cast<double>(std::mt19937_64::max());
    if (u < link.drop_probability) return Charge::kDropped;
  }
  return Charge::kDelivered;
}

Result<Bytes> SimNetwork::Deliver(const Address& from, const Address& to,
                                  BytesView request, Nanos deadline) {
  const Nanos deadline_at = deadline < 0 ? -1 : clock_.Now() + deadline;
  // The "net" span covers the whole round trip — request flight, handler,
  // reply flight — on the virtual clock. It nests between the client's rpc
  // span and the destination's dispatch span (delivery is a synchronous call
  // on the caller's thread), so the exported timeline shows exactly how much
  // of a round trip was wire time.
  std::optional<SpanScope> span;
  if (sinks_.active()) {
    span.emplace(&sinks_, clock_, kInvalidSite, "net",
                 from + " -> " + to + " " + std::to_string(request.size()) +
                     "B",
                 TraceContext::Current());
  }
  auto fail = [&](const Status& status) {
    telemetry_.OnFailure(status);
    if (span.has_value()) span->MarkFailed();
    if (sinks_.active()) {
      sinks_.Record(clock_.Now(), kInvalidSite, "net.error", status.message(),
                    TraceContext::Current());
    }
    return status;
  };
  if (!LinkUp(from, to)) {
    return fail(DisconnectedError("link down: " + from + " -> " + to));
  }
  SimTransport* dest = nullptr;
  if (auto it = endpoints_.find(to); it != endpoints_.end()) dest = it->second;
  if (dest == nullptr || dest->handler_ == nullptr) {
    return fail(NotFoundError("no endpoint serving at " + to));
  }

  const LinkParams& link = LinkFor(from, to);
  telemetry_.OnRequest(request.size());
  switch (ChargeMessage(link, request.size(), deadline_at)) {
    case Charge::kDropped:
      return fail(TimeoutError("request dropped: " + from + " -> " + to));
    case Charge::kDeadline:
      return fail(TimeoutError("deadline exceeded in request flight: " + from +
                               " -> " + to));
    case Charge::kDelivered:
      break;
  }

  Result<Bytes> reply = dest->handler_->HandleRequest(from, request);
  if (!reply.ok()) {
    telemetry_.OnFailure(reply.status());
    if (span.has_value()) span->MarkFailed();
    return reply;
  }

  telemetry_.OnReply(reply->size());
  // A disconnection during the reply flight is indistinguishable from a
  // request-side failure to the caller; model it the same way.
  if (!LinkUp(from, to)) {
    return fail(
        DisconnectedError("link down during reply: " + to + " -> " + from));
  }
  switch (ChargeMessage(link, reply->size(), deadline_at)) {
    case Charge::kDropped:
      return fail(TimeoutError("reply dropped: " + to + " -> " + from));
    case Charge::kDeadline:
      return fail(TimeoutError("deadline exceeded in reply flight: " + to +
                               " -> " + from));
    case Charge::kDelivered:
      break;
  }
  return reply;
}

SimTransport::~SimTransport() { network_->Unregister(address_); }

Result<Bytes> SimTransport::Request(const Address& to, BytesView request,
                                    const CallOptions& options) {
  return network_->Deliver(address_, to, request, EffectiveDeadline(options));
}

Status SimTransport::Serve(MessageHandler* handler) {
  handler_ = handler;
  return Status::Ok();
}

void SimTransport::StopServing() { handler_ = nullptr; }

}  // namespace obiwan::net
