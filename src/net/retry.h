// RetryingTransport — a decorator that retries failed round trips.
//
// The paper's setting is "slow and unreliable connections" (§1): on wireless
// links, individual messages drop. Retrying gives *at-least-once* semantics:
// when the lost message was the reply, the operation already executed and
// will run again. OBIWAN's own protocol tolerates that — Get re-sends the
// same batch, Put re-applies the same state, Bind of an identical record is
// idempotent at the registry — so retries never corrupt platform state. The
// one caveat is application RMI: a retried call to a non-idempotent method
// (counters, appends) may execute more than once; make such methods
// idempotent, or invoke them over an unretried transport.
//
// Retries fire on kTimeout (lost message) and, optionally, on kDisconnected
// (a link that flaps faster than the retry budget). All other errors are
// definitive and propagate immediately. Backoff is charged to the provided
// clock, so simulations account the waiting time virtually.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/clock.h"
#include "net/transport.h"

namespace obiwan::net {

struct RetryPolicy {
  int max_attempts = 3;             // total tries, including the first
  Nanos initial_backoff = 10 * kMilli;
  double backoff_multiplier = 2.0;
  // Backoff ceiling: the multiplier is applied in double and clamped here,
  // so a large max_attempts can neither overflow Nanos nor produce
  // multi-minute sleeps.
  Nanos max_backoff = 10 * kSecond;
  bool retry_disconnected = false;  // also retry kDisconnected
};

class RetryingTransport final : public Transport {
 public:
  using Transport::Request;

  // Decorates `inner`; the clock paces the backoff (virtual in simulations).
  RetryingTransport(std::unique_ptr<Transport> inner, RetryPolicy policy,
                    Clock& clock = SystemClock::Instance())
      : inner_(std::move(inner)), policy_(policy), clock_(clock) {}

  Result<Bytes> Request(const Address& to, BytesView request,
                        const CallOptions& options) override {
    // The deadline applies per attempt: each try gets the full budget, and
    // the backoff between tries is charged to the clock on top of it.
    Nanos backoff = std::min(policy_.initial_backoff, policy_.max_backoff);
    Result<Bytes> reply = InternalError("retry loop did not run");
    for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      reply = inner_->Request(to, request, options);
      if (reply.ok() || !ShouldRetry(reply.status())) return reply;
      retries_.fetch_add(1, std::memory_order_relaxed);
      if (attempt < policy_.max_attempts) {
        clock_.Sleep(backoff);
        backoff = NextBackoff(backoff);
      }
    }
    return reply;
  }

  Status Serve(MessageHandler* handler) override { return inner_->Serve(handler); }
  void StopServing() override { inner_->StopServing(); }
  Address LocalAddress() const override { return inner_->LocalAddress(); }

  // Deadlines are enforced by the decorated transport.
  void SetDefaultDeadline(Nanos deadline) override {
    inner_->SetDefaultDeadline(deadline);
  }
  Nanos default_deadline() const override { return inner_->default_deadline(); }

  // Number of retry attempts performed (not counting first tries).
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  bool ShouldRetry(const Status& status) const {
    return status.code() == StatusCode::kTimeout ||
           (policy_.retry_disconnected &&
            status.code() == StatusCode::kDisconnected);
  }

  Nanos NextBackoff(Nanos backoff) const {
    const double next =
        static_cast<double>(backoff) * policy_.backoff_multiplier;
    const double cap = static_cast<double>(policy_.max_backoff);
    // !(next < cap) also catches overflow to +inf.
    if (!(next < cap)) return policy_.max_backoff;
    return static_cast<Nanos>(next);
  }

  std::unique_ptr<Transport> inner_;
  RetryPolicy policy_;
  Clock& clock_;
  // Request is issued from many client threads concurrently.
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace obiwan::net
