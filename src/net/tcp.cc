#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/frame.h"

namespace obiwan::net {
namespace {

// Absolute steady-clock deadline; negative = unbounded.
constexpr Nanos kNoDeadlineAt = -1;

Nanos SteadyNow() { return SystemClock::Instance().Now(); }

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Remaining budget until `deadline_at`: negative = unbounded, 0 = expired.
Nanos Remaining(Nanos deadline_at) {
  if (deadline_at < 0) return -1;
  const Nanos left = deadline_at - SteadyNow();
  return left > 0 ? left : 0;
}

// Arm SO_SNDTIMEO/SO_RCVTIMEO from the remaining budget. A zero timeval
// means "block forever" to the kernel, so unbounded budgets map to exactly
// that — which also clears any timeout a pooled socket carried from an
// earlier, deadline-bound request.
void SetSocketTimeout(int fd, int optname, Nanos remaining) {
  timeval tv{};
  if (remaining > 0) {
    tv.tv_sec = static_cast<time_t>(remaining / kSecond);
    tv.tv_usec = static_cast<suseconds_t>((remaining % kSecond) / kMicro);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

// Write the whole buffer, bounded by `deadline_at`.
Status WriteFull(int fd, BytesView data, Nanos deadline_at) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const Nanos remaining = Remaining(deadline_at);
    if (remaining == 0) return TimeoutError("send: deadline exceeded");
    SetSocketTimeout(fd, SO_SNDTIMEO, remaining);
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return TimeoutError("send: deadline exceeded");
      }
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Read exactly `size` bytes, bounded by `deadline_at`. A clean close
// mid-frame is data loss. `*progressed` (optional) is set once any byte has
// been consumed from the stream.
Status ReadFull(int fd, std::uint8_t* out, std::size_t size, Nanos deadline_at,
                bool* progressed = nullptr) {
  std::size_t got = 0;
  while (got < size) {
    const Nanos remaining = Remaining(deadline_at);
    if (remaining == 0) return TimeoutError("recv: deadline exceeded");
    SetSocketTimeout(fd, SO_RCVTIMEO, remaining);
    ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return TimeoutError("recv: deadline exceeded");
      }
      return Errno("recv");
    }
    if (n == 0) return DataLossError("peer closed connection mid-frame");
    got += static_cast<std::size_t>(n);
    if (progressed != nullptr) *progressed = true;
  }
  return Status::Ok();
}

Status WriteFrame(int fd, BytesView payload, Nanos deadline_at) {
  // One coalesced write per frame: a separate header write would make every
  // exchange a write-write-read pattern, which stalls ~40 ms per round trip
  // on reused connections (Nagle holding the second segment for the peer's
  // delayed ACK).
  Bytes frame(4 + payload.size());
  auto size = static_cast<std::uint32_t>(payload.size());
  frame[0] = static_cast<std::uint8_t>(size);
  frame[1] = static_cast<std::uint8_t>(size >> 8);
  frame[2] = static_cast<std::uint8_t>(size >> 16);
  frame[3] = static_cast<std::uint8_t>(size >> 24);
  if (!payload.empty()) {
    std::memcpy(frame.data() + 4, payload.data(), payload.size());
  }
  return WriteFull(fd, AsView(frame), deadline_at);
}

Result<Bytes> ReadFrame(int fd, Nanos deadline_at, bool* progressed = nullptr) {
  std::uint8_t header[4];
  OBIWAN_RETURN_IF_ERROR(ReadFull(fd, header, 4, deadline_at, progressed));
  std::uint32_t size = std::uint32_t{header[0]} | std::uint32_t{header[1]} << 8 |
                       std::uint32_t{header[2]} << 16 |
                       std::uint32_t{header[3]} << 24;
  // 64 MiB frame cap: a corrupt length prefix must not trigger a huge
  // allocation.
  if (size > (64u << 20)) return DataLossError("oversized frame");
  Bytes payload(size);
  OBIWAN_RETURN_IF_ERROR(ReadFull(fd, payload.data(), size, deadline_at, progressed));
  return payload;
}

Result<std::pair<std::string, std::uint16_t>> ParseAddress(const Address& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return InvalidArgumentError("expected host:port, got '" + addr + "'");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    char c = addr[i];
    if (c < '0' || c > '9') return InvalidArgumentError("bad port in '" + addr + "'");
    port = port * 10 + (c - '0');
    if (port > 65535) return InvalidArgumentError("port out of range in '" + addr + "'");
  }
  return std::make_pair(addr.substr(0, colon), static_cast<std::uint16_t>(port));
}

class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int get() const { return fd_; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

Status SetNonBlocking(int fd, bool non_blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

// Connect within the deadline budget: non-blocking connect + poll, then back
// to blocking mode (per-I/O deadlines are enforced with socket timeouts).
Result<int> ConnectWithDeadline(const std::string& host, std::uint16_t port,
                                const Address& to, Nanos deadline_at) {
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address: " + host);
  }

  OBIWAN_RETURN_IF_ERROR(SetNonBlocking(fd.get(), true));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      // Connection refused / unreachable is the TCP face of a disconnection.
      return DisconnectedError("connect to " + to + ": " + std::strerror(errno));
    }
    for (;;) {
      const Nanos remaining = Remaining(deadline_at);
      if (remaining == 0) {
        return TimeoutError("connect to " + to + ": deadline exceeded");
      }
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int timeout_ms =
          remaining < 0 ? -1
                        : static_cast<int>((remaining + kMilli - 1) / kMilli);
      int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Errno("poll(connect)");
      }
      if (rc == 0) {
        return TimeoutError("connect to " + to + ": deadline exceeded");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return DisconnectedError("connect to " + to + ": " + std::strerror(err));
    }
  }
  OBIWAN_RETURN_IF_ERROR(SetNonBlocking(fd.get(), false));
  return fd.release();
}

// Actual peer endpoint of a connected socket, for logs/spans/flight
// recorder; falls back to an opaque tag if the socket is already gone.
Address PeerAddress(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0 ||
      addr.sin_family != AF_INET) {
    return "tcp-peer";
  }
  char buf[INET_ADDRSTRLEN];
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return "tcp-peer";
  }
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(std::uint16_t port) {
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 64) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(fd.release(), ntohs(addr.sin_port)));
}

TcpTransport::TcpTransport(int listen_fd, std::uint16_t port)
    : listen_fd_(listen_fd), port_(port) {
  SetDefaultDeadline(kDefaultDeadline);
}

TcpTransport::~TcpTransport() {
  StopServing();
  CloseIdleConnections();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Address TcpTransport::LocalAddress() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void TcpTransport::SetPoolCapacity(std::size_t capacity) {
  std::vector<int> evicted;
  {
    std::lock_guard lock(pool_mutex_);
    pool_capacity_ = capacity;
    while (pool_.size() > pool_capacity_) {
      evicted.push_back(pool_.back().second);
      pool_.pop_back();
    }
  }
  for (int fd : evicted) ::close(fd);
}

void TcpTransport::SetMaxConnections(std::size_t max_connections) {
  {
    std::lock_guard lock(conn_mutex_);
    max_connections_ = max_connections > 0 ? max_connections : 1;
  }
  conn_cv_.notify_all();
}

std::size_t TcpTransport::idle_pooled_connections() const {
  std::lock_guard lock(pool_mutex_);
  return pool_.size();
}

std::size_t TcpTransport::active_connections() const {
  std::lock_guard lock(conn_mutex_);
  return conn_threads_.size();
}

Status TcpTransport::Serve(MessageHandler* handler) {
  if (running_.load()) return FailedPreconditionError("already serving");
  handler_.store(handler);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpTransport::StopServing() {
  if (!running_.exchange(false)) return;
  // Unblock accept() by shutting the listening socket down; keep the fd so
  // LocalAddress stays valid until destruction.
  ::shutdown(listen_fd_, SHUT_RDWR);
  conn_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock lock(conn_mutex_);
  // Persistent connections idle in recv() until their peer speaks; shut them
  // down so every handler thread unblocks and retires itself.
  for (auto& [fd, thread] : conn_threads_) ::shutdown(fd, SHUT_RDWR);
  conn_cv_.wait(lock, [this] { return conn_threads_.empty(); });
  for (auto& thread : finished_threads_) thread.join();
  finished_threads_.clear();
  handler_.store(nullptr);
}

void TcpTransport::AcceptLoop() {
  while (running_.load()) {
    {
      std::unique_lock lock(conn_mutex_);
      // Reap finished connection threads so a long-lived server does not
      // accumulate one dead std::thread per connection ever accepted.
      for (auto& thread : finished_threads_) thread.join();
      finished_threads_.clear();
      // Bound concurrency: stop accepting (the kernel backlog queues) until
      // a handler slot frees up.
      conn_cv_.wait(lock, [this] {
        return !running_.load() || conn_threads_.size() < max_connections_;
      });
    }
    if (!running_.load()) break;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // socket shut down or fatal error: stop accepting
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(conn_mutex_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    // The handler thread's retire step locks conn_mutex_, so it cannot race
    // past this emplace even if the connection is closed immediately.
    conn_threads_.emplace(fd, std::thread([this, fd] {
                            HandleConnection(fd);
                            RetireConnection(fd);
                          }));
  }
}

void TcpTransport::RetireConnection(int fd) {
  std::lock_guard lock(conn_mutex_);
  ::close(fd);
  auto it = conn_threads_.find(fd);
  if (it != conn_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
  conn_cv_.notify_all();
}

void TcpTransport::HandleConnection(int fd) {
  const Address peer = PeerAddress(fd);
  // A connection carries any number of request/reply exchanges in sequence.
  while (running_.load()) {
    Result<Bytes> request = ReadFrame(fd, kNoDeadlineAt);
    if (!request.ok()) return;  // peer closed or stream corrupt
    MessageHandler* handler = handler_.load();
    if (handler == nullptr) return;
    Result<Bytes> reply = handler->HandleRequest(peer, AsView(*request));
    Bytes frame = EncodeReplyFrame(reply);
    if (!WriteFrame(fd, AsView(frame), kNoDeadlineAt).ok()) return;
  }
}

int TcpTransport::CheckoutConnection(const Address& to) {
  std::lock_guard lock(pool_mutex_);
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->first != to) {
      ++it;
      continue;
    }
    const int fd = it->second;
    it = pool_.erase(it);
    // Health check: a readable FIN (peer hung up) or stray bytes (protocol
    // desync) disqualify the connection for a fresh request/reply exchange.
    std::uint8_t probe;
    const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return fd;
    ::close(fd);
  }
  return -1;
}

void TcpTransport::CheckinConnection(const Address& to, int fd) {
  std::vector<int> evicted;
  {
    std::lock_guard lock(pool_mutex_);
    if (pool_capacity_ == 0) {
      evicted.push_back(fd);
    } else {
      pool_.emplace_front(to, fd);
      while (pool_.size() > pool_capacity_) {
        evicted.push_back(pool_.back().second);
        pool_.pop_back();
      }
    }
  }
  for (int evicted_fd : evicted) ::close(evicted_fd);
}

void TcpTransport::CloseIdleConnections() {
  std::lock_guard lock(pool_mutex_);
  for (auto& [address, fd] : pool_) ::close(fd);
  pool_.clear();
}

Result<Bytes> TcpTransport::Request(const Address& to, BytesView request,
                                    const CallOptions& options) {
  Result<Bytes> reply = RequestImpl(to, request, options);
  if (reply.ok()) {
    telemetry_.OnRequest(request.size());
    telemetry_.OnReply(reply->size());
  } else {
    telemetry_.OnFailure(reply.status());
  }
  return reply;
}

Result<Bytes> TcpTransport::RoundTrip(int fd, BytesView request,
                                      Nanos deadline_at, bool* reply_started) {
  OBIWAN_RETURN_IF_ERROR(WriteFrame(fd, request, deadline_at));
  return ReadFrame(fd, deadline_at, reply_started);
}

Result<Bytes> TcpTransport::RequestImpl(const Address& to, BytesView request,
                                        const CallOptions& options) {
  OBIWAN_ASSIGN_OR_RETURN(auto host_port, ParseAddress(to));
  const Nanos deadline = EffectiveDeadline(options);
  const Nanos deadline_at =
      deadline < 0 ? kNoDeadlineAt : SteadyNow() + deadline;

  bool reused = false;
  int fd = CheckoutConnection(to);
  if (fd >= 0) {
    reused = true;
    telemetry_.OnPoolHit();
  } else {
    OBIWAN_ASSIGN_OR_RETURN(
        fd, ConnectWithDeadline(host_port.first, host_port.second, to,
                                deadline_at));
    telemetry_.OnConnect();
  }

  bool reply_started = false;
  Result<Bytes> frame = RoundTrip(fd, request, deadline_at, &reply_started);
  if (!frame.ok()) {
    ::close(fd);
    // The checkout health check can miss a peer that vanished between probe
    // and write. If the exchange died on a reused connection before any
    // reply byte arrived, run it once more on a fresh connection. Timeouts
    // are excluded: the peer may still be executing the request, and
    // re-sending is the retry decorator's (at-least-once) decision.
    const bool stale_retry = reused && !reply_started &&
                             frame.status().code() != StatusCode::kTimeout;
    if (!stale_retry) return frame.status();
    OBIWAN_ASSIGN_OR_RETURN(
        fd, ConnectWithDeadline(host_port.first, host_port.second, to,
                                deadline_at));
    telemetry_.OnConnect();
    frame = RoundTrip(fd, request, deadline_at, &reply_started);
    if (!frame.ok()) {
      ::close(fd);
      return frame.status();
    }
  }
  CheckinConnection(to, fd);
  return DecodeReplyFrame(AsView(*frame));
}

}  // namespace obiwan::net
