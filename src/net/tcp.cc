#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/frame.h"

namespace obiwan::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Blocking write of the whole buffer.
Status WriteFull(int fd, BytesView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Blocking read of exactly `size` bytes. A clean close mid-frame is data loss.
Status ReadFull(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return DataLossError("peer closed connection mid-frame");
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, BytesView payload) {
  std::uint8_t header[4];
  auto size = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::uint8_t>(size);
  header[1] = static_cast<std::uint8_t>(size >> 8);
  header[2] = static_cast<std::uint8_t>(size >> 16);
  header[3] = static_cast<std::uint8_t>(size >> 24);
  OBIWAN_RETURN_IF_ERROR(WriteFull(fd, BytesView(header, 4)));
  return WriteFull(fd, payload);
}

Result<Bytes> ReadFrame(int fd) {
  std::uint8_t header[4];
  OBIWAN_RETURN_IF_ERROR(ReadFull(fd, header, 4));
  std::uint32_t size = std::uint32_t{header[0]} | std::uint32_t{header[1]} << 8 |
                       std::uint32_t{header[2]} << 16 |
                       std::uint32_t{header[3]} << 24;
  // 64 MiB frame cap: a corrupt length prefix must not trigger a huge
  // allocation.
  if (size > (64u << 20)) return DataLossError("oversized frame");
  Bytes payload(size);
  OBIWAN_RETURN_IF_ERROR(ReadFull(fd, payload.data(), size));
  return payload;
}

Result<std::pair<std::string, std::uint16_t>> ParseAddress(const Address& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return InvalidArgumentError("expected host:port, got '" + addr + "'");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    char c = addr[i];
    if (c < '0' || c > '9') return InvalidArgumentError("bad port in '" + addr + "'");
    port = port * 10 + (c - '0');
    if (port > 65535) return InvalidArgumentError("port out of range in '" + addr + "'");
  }
  return std::make_pair(addr.substr(0, colon), static_cast<std::uint16_t>(port));
}

class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int get() const { return fd_; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(std::uint16_t port) {
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 64) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(fd.release(), ntohs(addr.sin_port)));
}

TcpTransport::TcpTransport(int listen_fd, std::uint16_t port)
    : listen_fd_(listen_fd), port_(port) {}

TcpTransport::~TcpTransport() {
  StopServing();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Address TcpTransport::LocalAddress() const {
  return "127.0.0.1:" + std::to_string(port_);
}

Status TcpTransport::Serve(MessageHandler* handler) {
  if (running_.load()) return FailedPreconditionError("already serving");
  handler_.store(handler);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpTransport::StopServing() {
  if (!running_.exchange(false)) return;
  // Unblock accept() by shutting the listening socket down; keep the fd so
  // LocalAddress stays valid until destruction.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(conn_threads_mutex_);
    to_join.swap(conn_threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  handler_.store(nullptr);
}

void TcpTransport::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // socket shut down or fatal error: stop accepting
    }
    std::lock_guard lock(conn_threads_mutex_);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void TcpTransport::HandleConnection(int fd) {
  FdGuard guard(fd);
  // A connection carries any number of request/reply exchanges in sequence.
  while (running_.load()) {
    Result<Bytes> request = ReadFrame(fd);
    if (!request.ok()) return;  // peer closed or stream corrupt
    MessageHandler* handler = handler_.load();
    if (handler == nullptr) return;
    Result<Bytes> reply = handler->HandleRequest("tcp-peer", AsView(*request));
    Bytes frame = EncodeReplyFrame(reply);
    if (!WriteFrame(fd, AsView(frame)).ok()) return;
  }
}

Result<Bytes> TcpTransport::Request(const Address& to, BytesView request) {
  Result<Bytes> reply = RequestImpl(to, request);
  if (reply.ok()) {
    telemetry_.OnRequest(request.size());
    telemetry_.OnReply(reply->size());
  } else {
    telemetry_.OnFailure();
  }
  return reply;
}

Result<Bytes> TcpTransport::RequestImpl(const Address& to, BytesView request) {
  OBIWAN_ASSIGN_OR_RETURN(auto host_port, ParseAddress(to));

  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(host_port.second);
  if (::inet_pton(AF_INET, host_port.first.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address: " + host_port.first);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    // Connection refused / unreachable is the TCP face of a disconnection.
    return DisconnectedError("connect to " + to + ": " + std::strerror(errno));
  }

  OBIWAN_RETURN_IF_ERROR(WriteFrame(fd.get(), request));
  OBIWAN_ASSIGN_OR_RETURN(Bytes frame, ReadFrame(fd.get()));
  return DecodeReplyFrame(AsView(frame));
}

}  // namespace obiwan::net
