// In-process network with synchronous, zero-latency delivery.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "net/transport.h"

namespace obiwan::net {

class LoopbackTransport;

// A bus connecting any number of in-process endpoints. Delivery is a direct
// function call into the destination handler (re-entrant requests are allowed,
// which the replication protocol relies on when replicas are re-exported).
class LoopbackNetwork {
 public:
  // Create an endpoint bound to `address`. The endpoint unregisters itself
  // when destroyed.
  std::unique_ptr<LoopbackTransport> CreateEndpoint(const Address& address);

  TrafficStats stats() const { return telemetry_.stats(); }
  void ResetStats() { telemetry_.Reset(); }

 private:
  friend class LoopbackTransport;

  Status Register(const Address& address, LoopbackTransport* endpoint);
  void Unregister(const Address& address);
  Result<Bytes> Deliver(const Address& from, const Address& to, BytesView request);

  std::mutex mutex_;  // guards the endpoint table only; delivery is unlocked
  std::unordered_map<Address, LoopbackTransport*> endpoints_;
  TrafficTelemetry telemetry_{"loopback"};
};

class LoopbackTransport final : public Transport {
 public:
  using Transport::Request;

  ~LoopbackTransport() override;

  // Delivery is instantaneous, so any deadline is trivially honored.
  Result<Bytes> Request(const Address& to, BytesView request,
                        const CallOptions& options) override;
  Status Serve(MessageHandler* handler) override;
  void StopServing() override;
  Address LocalAddress() const override { return address_; }

 private:
  friend class LoopbackNetwork;
  LoopbackTransport(LoopbackNetwork* network, Address address)
      : network_(network), address_(std::move(address)) {}

  LoopbackNetwork* network_;
  Address address_;
  MessageHandler* handler_ = nullptr;
};

}  // namespace obiwan::net
