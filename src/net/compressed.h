// CompressedTransport — a decorator compressing every payload that shrinks.
//
// Both endpoints of a conversation must use the decorator (the 1-byte frame
// tag distinguishes raw from compressed payloads). On the simulated network
// this directly reduces the bytes charged to the bandwidth model, so the
// mobility benches can quantify what compression buys on a 50 kbit/s link;
// on TCP it reduces real bytes.
#pragma once

#include <memory>

#include "net/transport.h"
#include "wire/compress.h"

namespace obiwan::net {

class CompressedTransport final : public Transport, private MessageHandler {
 public:
  using Transport::Request;

  explicit CompressedTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  Result<Bytes> Request(const Address& to, BytesView request,
                        const CallOptions& options) override {
    OBIWAN_ASSIGN_OR_RETURN(Bytes reply,
                            inner_->Request(to, Pack(request), options));
    return Unpack(AsView(reply));
  }

  Status Serve(MessageHandler* handler) override {
    user_handler_ = handler;
    return inner_->Serve(this);
  }

  void StopServing() override {
    inner_->StopServing();
    user_handler_ = nullptr;
  }

  Address LocalAddress() const override { return inner_->LocalAddress(); }

  // Deadlines are enforced by the decorated transport.
  void SetDefaultDeadline(Nanos deadline) override {
    inner_->SetDefaultDeadline(deadline);
  }
  Nanos default_deadline() const override { return inner_->default_deadline(); }

  // Bytes saved on the wire so far (requests sent + replies produced).
  std::uint64_t bytes_saved() const { return bytes_saved_; }

 private:
  static constexpr std::uint8_t kRaw = 0;
  static constexpr std::uint8_t kCompressed = 1;

  Bytes Pack(BytesView payload) {
    Bytes compressed = wire::Compress(payload);
    Bytes framed;
    if (compressed.size() < payload.size()) {
      bytes_saved_ += payload.size() - compressed.size();
      framed.reserve(compressed.size() + 1);
      framed.push_back(kCompressed);
      framed.insert(framed.end(), compressed.begin(), compressed.end());
    } else {
      framed.reserve(payload.size() + 1);
      framed.push_back(kRaw);
      framed.insert(framed.end(), payload.begin(), payload.end());
    }
    return framed;
  }

  Result<Bytes> Unpack(BytesView framed) {
    if (framed.empty()) return DataLossError("empty compressed frame");
    BytesView body = framed.subspan(1);
    switch (framed[0]) {
      case kRaw:
        return Bytes(body.begin(), body.end());
      case kCompressed:
        return wire::Decompress(body);
      default:
        return DataLossError("unknown compression tag");
    }
  }

  // MessageHandler: unwrap inbound requests, wrap outbound replies.
  Result<Bytes> HandleRequest(const Address& from, BytesView request) override {
    MessageHandler* handler = user_handler_;
    if (handler == nullptr) return FailedPreconditionError("not serving");
    OBIWAN_ASSIGN_OR_RETURN(Bytes plain, Unpack(request));
    OBIWAN_ASSIGN_OR_RETURN(Bytes reply, handler->HandleRequest(from, AsView(plain)));
    return Pack(AsView(reply));
  }

  std::unique_ptr<Transport> inner_;
  MessageHandler* user_handler_ = nullptr;
  std::uint64_t bytes_saved_ = 0;
};

}  // namespace obiwan::net
