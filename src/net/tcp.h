// Real TCP transport.
//
// Deployment-grade counterpart to the in-process networks: length-prefixed
// frames over POSIX sockets, one handler thread per accepted connection. The
// simulated benchmarks never touch this; it exists so the same application
// code (sites, registry, replication) runs across real processes, and it is
// exercised by the cross-process integration tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace obiwan::net {

class TcpTransport final : public Transport {
 public:
  // Binds and listens immediately so the address (with the kernel-assigned
  // port when `port` is 0) is known before Serve is called.
  static Result<std::unique_ptr<TcpTransport>> Create(std::uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<Bytes> Request(const Address& to, BytesView request) override;
  Status Serve(MessageHandler* handler) override;
  void StopServing() override;
  Address LocalAddress() const override;

  // Outbound traffic issued through this transport (payload bytes, excluding
  // the 4-byte frame headers, to stay comparable with the in-process
  // networks).
  TrafficStats stats() const { return telemetry_.stats(); }
  void ResetStats() { telemetry_.Reset(); }

 private:
  TcpTransport(int listen_fd, std::uint16_t port);

  Result<Bytes> RequestImpl(const Address& to, BytesView request);
  void AcceptLoop();
  void HandleConnection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  std::atomic<MessageHandler*> handler_{nullptr};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_threads_mutex_;
  std::vector<std::thread> conn_threads_;
  TrafficTelemetry telemetry_{"tcp"};
};

}  // namespace obiwan::net
