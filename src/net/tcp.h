// Real TCP transport.
//
// Deployment-grade counterpart to the in-process networks: length-prefixed
// frames over POSIX sockets, one handler thread per accepted connection. The
// simulated benchmarks never touch this; it exists so the same application
// code (sites, registry, replication) runs across real processes, and it is
// exercised by the cross-process integration tests.
//
// Two properties make it usable on the paper's "slow and unreliable
// connections":
//
//   Deadlines. Every request runs under an effective deadline (per-call
//   CallOptions or the transport default, kDefaultDeadline unless
//   configured). Connect is non-blocking with poll(); send/recv run under
//   SO_SNDTIMEO/SO_RCVTIMEO recomputed from the remaining budget, so a peer
//   that accepts and then stalls yields kTimeout instead of wedging the
//   caller — which is what makes RetryingTransport meaningful over real
//   sockets.
//
//   Connection pooling. Outbound connections are persistent and reused per
//   destination address instead of paying socket/connect/close per request.
//   Checkout health-checks the pooled socket (a peer FIN or stray bytes
//   disqualify it), a stale connection whose request fails before any reply
//   byte arrived is retried once on a fresh connection, and the idle pool is
//   capped with LRU eviction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/contention.h"
#include "net/transport.h"

namespace obiwan::net {

class TcpTransport final : public Transport {
 public:
  using Transport::Request;

  // Default round-trip deadline on real sockets; override per call or with
  // SetDefaultDeadline (kNoDeadline restores unbounded waits).
  static constexpr Nanos kDefaultDeadline = 30 * kSecond;
  // Idle outbound connections kept across all destinations (LRU-evicted).
  static constexpr std::size_t kDefaultPoolCapacity = 8;
  // Concurrent inbound connections; the accept loop stops accepting (the
  // kernel backlog queues) until a slot frees up.
  static constexpr std::size_t kDefaultMaxConnections = 128;

  // Binds and listens immediately so the address (with the kernel-assigned
  // port when `port` is 0) is known before Serve is called.
  static Result<std::unique_ptr<TcpTransport>> Create(std::uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<Bytes> Request(const Address& to, BytesView request,
                        const CallOptions& options) override;
  Status Serve(MessageHandler* handler) override;
  void StopServing() override;
  Address LocalAddress() const override;

  // Idle-connection cap; 0 disables pooling (one connect per request, the
  // pre-pool behaviour — benches use this to measure what pooling buys).
  void SetPoolCapacity(std::size_t capacity);
  // Server-side concurrent-connection bound (must be >= 1).
  void SetMaxConnections(std::size_t max_connections);

  // Outbound traffic issued through this transport (payload bytes, excluding
  // the 4-byte frame headers, to stay comparable with the in-process
  // networks).
  TrafficStats stats() const { return telemetry_.stats(); }
  void ResetStats() { telemetry_.Reset(); }

  // Pooling introspection (tests, benches).
  std::uint64_t connects() const { return telemetry_.stats().connects; }
  std::uint64_t pool_hits() const { return telemetry_.stats().pool_hits; }
  std::size_t idle_pooled_connections() const;
  // Live server-side connection handler threads.
  std::size_t active_connections() const;

 private:
  TcpTransport(int listen_fd, std::uint16_t port);

  Result<Bytes> RequestImpl(const Address& to, BytesView request,
                            const CallOptions& options);
  // One framed exchange on `fd`. `*reply_started` is set once any reply byte
  // has been read (after which a stale-connection retry would risk a
  // duplicate execution and is not attempted).
  Result<Bytes> RoundTrip(int fd, BytesView request, Nanos deadline_at,
                          bool* reply_started);

  // Client-side pool: health-checked checkout (or -1), MRU check-in with LRU
  // eviction beyond the cap.
  int CheckoutConnection(const Address& to);
  void CheckinConnection(const Address& to, int fd);
  void CloseIdleConnections();

  void AcceptLoop();
  void HandleConnection(int fd);
  // Runs on the connection thread as its last action: closes the fd and
  // moves the thread handle to the finished list for joining.
  void RetireConnection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  std::atomic<MessageHandler*> handler_{nullptr};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  // Server-side connection bookkeeping: live handler threads keyed by their
  // connection fd (so StopServing can shut the sockets down), finished
  // threads awaiting a join (reaped by the accept loop and StopServing).
  mutable std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::unordered_map<int, std::thread> conn_threads_;
  std::vector<std::thread> finished_threads_;
  std::size_t max_connections_ = kDefaultMaxConnections;

  // Client-side idle pool, most recently used at the front. Tracked: every
  // outbound request checks out / checks in through this lock, so its wait
  // histogram shows when the pool serializes concurrent callers.
  mutable TrackedMutex pool_mutex_{"tcp_pool"};
  std::list<std::pair<Address, int>> pool_;
  std::size_t pool_capacity_ = kDefaultPoolCapacity;

  TrafficTelemetry telemetry_{"tcp"};
};

}  // namespace obiwan::net
