// Reply envelope shared by transports that move opaque frames (TCP).
//
// The in-process networks return Result<Bytes> directly; a byte-stream
// transport needs the status encoded into the frame. Layout:
//   ok reply:    0x01 | payload...
//   error reply: 0x00 | code:varint | message:string
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::net {

inline Bytes EncodeReplyFrame(const Result<Bytes>& reply) {
  wire::Writer w;
  if (reply.ok()) {
    w.U8(1);
    w.Raw(AsView(reply.value()));
  } else {
    w.U8(0);
    w.Varint(static_cast<std::uint64_t>(reply.status().code()));
    w.String(reply.status().message());
  }
  return std::move(w).Take();
}

inline Result<Bytes> DecodeReplyFrame(BytesView frame) {
  wire::Reader r(frame);
  std::uint8_t ok = r.U8();
  if (!r.ok()) return r.status();
  if (ok != 0) {
    return Bytes(frame.begin() + 1, frame.end());
  }
  auto code = static_cast<StatusCode>(r.Varint());
  std::string message = r.String();
  if (!r.ok()) return r.status();
  if (code == StatusCode::kOk) {
    return DataLossError("error frame carried OK status");
  }
  return Status(code, std::move(message));
}

}  // namespace obiwan::net
