// Simulated network with a virtual clock.
//
// This is the reproduction's stand-in for the paper's testbed — a 10 Mbit/s
// LAN of Pentium II/III machines running JDK 1.x (paper §4). Delivery is a
// direct in-process call, but every message charges a cost model against a
// VirtualClock:
//
//   one-way cost = processing_overhead + propagation_latency + bytes/bandwidth
//
// `kPaperLan` calibrates the model to the paper's measured constants: an
// empty remote invocation round trip costs 2.8 ms and bulk payload moves at
// 10 Mbit/s. Because the clock is virtual, experiments are deterministic and
// run in microseconds of real time regardless of how much simulated traffic
// they generate.
//
// Mobility support (DESIGN.md, substitution 5) is modelled with link control:
// endpoints or individual links can be taken down, after which any request
// fails with kDisconnected — exactly the failure the OBIWAN core must absorb.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <unordered_map>
#include <utility>

#include "common/clock.h"
#include "common/trace.h"
#include "net/transport.h"

namespace obiwan::net {

struct LinkParams {
  Nanos processing_overhead = 0;  // per message, per direction (CPU + stack)
  Nanos latency = 0;              // one-way propagation
  double bandwidth_bytes_per_sec = 0;  // 0 = infinite
  Nanos jitter = 0;               // uniform [0, jitter) added per message
  double drop_probability = 0;    // dropped messages surface as kTimeout

  // One-way cost of a message of `bytes` bytes, excluding jitter/drops.
  Nanos OneWayCost(std::size_t bytes) const {
    Nanos transfer = 0;
    if (bandwidth_bytes_per_sec > 0) {
      transfer = static_cast<Nanos>(static_cast<double>(bytes) /
                                    bandwidth_bytes_per_sec * kSecond);
    }
    return processing_overhead + latency + transfer;
  }
};

// Calibrated to the paper's environment: empty RMI round trip = 2.8 ms,
// payload bandwidth = 10 Mbit/s (§4, §4.1).
inline constexpr LinkParams kPaperLan{
    .processing_overhead = 1'300 * kMicro,
    .latency = 100 * kMicro,
    .bandwidth_bytes_per_sec = 10.0e6 / 8.0,
};

// A slow wide-area / wireless profile for the mobility experiments: GPRS-era
// uplink with high latency (paper §1's "slow and unreliable connections").
inline constexpr LinkParams kPaperWireless{
    .processing_overhead = 1'300 * kMicro,
    .latency = 300 * kMilli,
    .bandwidth_bytes_per_sec = 50.0e3 / 8.0,  // 50 kbit/s
};

class SimTransport;

class SimNetwork {
 public:
  // `clock` must outlive the network. Pass a VirtualClock for deterministic
  // experiments or SystemClock::Instance() to actually pace traffic.
  SimNetwork(Clock& clock, LinkParams default_link, std::uint64_t seed = 1)
      : clock_(clock), default_link_(default_link), rng_(seed) {}

  std::unique_ptr<SimTransport> CreateEndpoint(const Address& address);

  // --- link control (mobility) ---
  // Take a whole endpoint off the air (the PDA goes through a tunnel) or
  // bring it back.
  void SetEndpointUp(const Address& address, bool up);
  // Control one directed pair independently of endpoint state.
  void SetLinkUp(const Address& a, const Address& b, bool up);
  // Override parameters for the (unordered) pair {a, b}.
  void SetLinkParams(const Address& a, const Address& b, LinkParams params);

  TrafficStats stats() const { return telemetry_.stats(); }
  void ResetStats() { telemetry_.Reset(); }
  Clock& clock() { return clock_; }

  // Attach a tracer: every delivery records a "net" span (request + handler
  // + reply on the virtual clock) and link/endpoint transitions, drops, and
  // disconnection windows record as instant events, so the timeline shows
  // the wire time between a client span and its server dispatch span. The
  // network records at SiteId 0 ("network/harness" in the Chrome export).
  void SetTracer(Tracer* tracer) { sinks_.SetAttached(tracer); }

 private:
  friend class SimTransport;

  Status Register(const Address& address, SimTransport* endpoint);
  void Unregister(const Address& address);
  // `deadline`: round-trip budget in nanos; negative = unbounded. When a
  // message's flight would cross the deadline, the clock is charged only up
  // to the deadline and the request fails with kTimeout — the virtual-time
  // analogue of a socket timeout firing.
  Result<Bytes> Deliver(const Address& from, const Address& to, BytesView request,
                        Nanos deadline);

  // Charge the one-way cost of a message to the virtual clock, bounded by
  // `deadline_at` (absolute virtual time; negative = none).
  enum class Charge { kDelivered, kDropped, kDeadline };
  Charge ChargeMessage(const LinkParams& link, std::size_t bytes,
                       Nanos deadline_at);

  const LinkParams& LinkFor(const Address& a, const Address& b) const;
  bool LinkUp(const Address& a, const Address& b) const;

  static std::pair<Address, Address> PairKeyOf(const Address& a, const Address& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  struct PairHash {
    std::size_t operator()(const std::pair<Address, Address>& p) const {
      return std::hash<Address>{}(p.first) * 1315423911u ^
             std::hash<Address>{}(p.second);
    }
  };

  Clock& clock_;
  LinkParams default_link_;
  std::mt19937_64 rng_;
  std::unordered_map<Address, SimTransport*> endpoints_;
  std::unordered_map<Address, bool> endpoint_down_;
  std::unordered_map<std::pair<Address, Address>, bool, PairHash> link_down_;
  std::unordered_map<std::pair<Address, Address>, LinkParams, PairHash> link_params_;
  TrafficTelemetry telemetry_{"sim"};
  TraceSinks sinks_;
};

class SimTransport final : public Transport {
 public:
  using Transport::Request;

  ~SimTransport() override;

  Result<Bytes> Request(const Address& to, BytesView request,
                        const CallOptions& options) override;
  Status Serve(MessageHandler* handler) override;
  void StopServing() override;
  Address LocalAddress() const override { return address_; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* network, Address address)
      : network_(network), address_(std::move(address)) {}

  SimNetwork* network_;
  Address address_;
  MessageHandler* handler_ = nullptr;
};

}  // namespace obiwan::net
