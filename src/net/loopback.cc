#include "net/loopback.h"

namespace obiwan::net {

std::unique_ptr<LoopbackTransport> LoopbackNetwork::CreateEndpoint(
    const Address& address) {
  auto endpoint =
      std::unique_ptr<LoopbackTransport>(new LoopbackTransport(this, address));
  Status s = Register(address, endpoint.get());
  if (!s.ok()) return nullptr;
  return endpoint;
}

Status LoopbackNetwork::Register(const Address& address,
                                 LoopbackTransport* endpoint) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = endpoints_.emplace(address, endpoint);
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("endpoint already bound: " + address);
  }
  return Status::Ok();
}

void LoopbackNetwork::Unregister(const Address& address) {
  std::lock_guard lock(mutex_);
  endpoints_.erase(address);
}

Result<Bytes> LoopbackNetwork::Deliver(const Address& from, const Address& to,
                                       BytesView request) {
  LoopbackTransport* dest = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(to);
    if (it != endpoints_.end()) dest = it->second;
  }
  if (dest == nullptr || dest->handler_ == nullptr) {
    Status status = NotFoundError("no endpoint serving at " + to);
    telemetry_.OnFailure(status);
    return status;
  }
  telemetry_.OnRequest(request.size());
  Result<Bytes> reply = dest->handler_->HandleRequest(from, request);
  if (reply.ok()) {
    telemetry_.OnReply(reply->size());
  } else {
    telemetry_.OnFailure(reply.status());
  }
  return reply;
}

LoopbackTransport::~LoopbackTransport() { network_->Unregister(address_); }

Result<Bytes> LoopbackTransport::Request(const Address& to, BytesView request,
                                         const CallOptions& options) {
  (void)options;  // zero-latency delivery always beats any deadline
  return network_->Deliver(address_, to, request);
}

Status LoopbackTransport::Serve(MessageHandler* handler) {
  handler_ = handler;
  return Status::Ok();
}

void LoopbackTransport::StopServing() { handler_ = nullptr; }

}  // namespace obiwan::net
