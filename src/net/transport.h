// Transport abstraction.
//
// OBIWAN's RMI substrate (src/rmi) is written against this synchronous
// request/reply interface. Three implementations exist:
//   - LoopbackNetwork: zero-cost in-process delivery, for unit tests and for
//     measuring pure CPU overheads (marshalling, proxy bookkeeping).
//   - SimNetwork: in-process delivery that charges latency/bandwidth against a
//     virtual clock and supports disconnection injection — the calibrated
//     stand-in for the paper's 10 Mbit/s LAN and for mobile links (DESIGN.md,
//     substitutions 2 and 5).
//   - TcpTransport: real sockets, for deployment and cross-process tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace obiwan::net {

// Logical endpoint address. Loopback/sim networks use opaque names
// (e.g. "site-a"); the TCP transport uses "host:port".
using Address = std::string;

// Receives inbound requests. A site's RMI dispatcher implements this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  // Handle one request and produce the reply payload. Returning a non-ok
  // status sends a transport-level error back to the caller (used for
  // "no such object"-class failures detected before dispatch).
  virtual Result<Bytes> HandleRequest(const Address& from, BytesView request) = 0;
};

// Aggregate traffic counters, used by benches to report bytes on the wire.
struct TrafficStats {
  std::uint64_t requests = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t reply_bytes = 0;
  std::uint64_t failures = 0;
};

// One site's view of a network: it can serve requests at its own address and
// issue requests to other addresses.
class Transport {
 public:
  virtual ~Transport() = default;

  // Synchronous round trip: deliver `request` to `to`, return its reply.
  virtual Result<Bytes> Request(const Address& to, BytesView request) = 0;

  // Start serving inbound requests with `handler`. The handler must outlive
  // the transport (or a subsequent StopServing call).
  virtual Status Serve(MessageHandler* handler) = 0;

  virtual void StopServing() = 0;

  // Address other endpoints should use to reach this transport.
  virtual Address LocalAddress() const = 0;
};

}  // namespace obiwan::net
