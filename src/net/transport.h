// Transport abstraction.
//
// OBIWAN's RMI substrate (src/rmi) is written against this synchronous
// request/reply interface. Three implementations exist:
//   - LoopbackNetwork: zero-cost in-process delivery, for unit tests and for
//     measuring pure CPU overheads (marshalling, proxy bookkeeping).
//   - SimNetwork: in-process delivery that charges latency/bandwidth against a
//     virtual clock and supports disconnection injection — the calibrated
//     stand-in for the paper's 10 Mbit/s LAN and for mobile links (DESIGN.md,
//     substitutions 2 and 5).
//   - TcpTransport: real sockets, for deployment and cross-process tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"

namespace obiwan::net {

// Logical endpoint address. Loopback/sim networks use opaque names
// (e.g. "site-a"); the TCP transport uses "host:port".
using Address = std::string;

// Explicit "wait forever" deadline value (see CallOptions::deadline).
inline constexpr Nanos kNoDeadline = -1;

// Per-call options for Transport::Request.
struct CallOptions {
  // Round-trip deadline budget for this call, in nanoseconds:
  //   > 0          — the call must complete within this budget or fail with
  //                  kTimeout (the hard bound the paper's "slow and
  //                  unreliable connections" setting requires);
  //   0 (default)  — use the transport's configured default deadline;
  //   kNoDeadline  — explicitly unbounded (the pre-deadline behaviour).
  Nanos deadline = 0;
};

// Receives inbound requests. A site's RMI dispatcher implements this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  // Handle one request and produce the reply payload. Returning a non-ok
  // status sends a transport-level error back to the caller (used for
  // "no such object"-class failures detected before dispatch).
  virtual Result<Bytes> HandleRequest(const Address& from, BytesView request) = 0;
};

// Aggregate traffic counters, used by benches to report bytes on the wire.
struct TrafficStats {
  std::uint64_t requests = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t reply_bytes = 0;
  std::uint64_t failures = 0;
  std::uint64_t timeouts = 0;   // failures that were deadline expirations
  std::uint64_t connects = 0;   // physical connections established (TCP)
  std::uint64_t pool_hits = 0;  // requests served on a reused connection
};

// Registry-backed traffic accounting shared by the three transports. Each
// network/transport instance owns one; the counters live in the metrics
// registry (labels: transport kind + a per-instance sequence number, so two
// networks in one process never share a series), and the legacy
// TrafficStats accessor is a view computed from the same counters — there is
// no parallel bookkeeping to drift.
class TrafficTelemetry {
 public:
  explicit TrafficTelemetry(std::string_view transport_kind,
                            MetricsRegistry& metrics = MetricsRegistry::Default()) {
    MetricLabels labels{
        {"transport", std::string(transport_kind)},
        {"inst", std::to_string(MetricsRegistry::NextInstance())}};
    requests_ = &metrics.GetCounter("obiwan_transport_requests_total", labels,
                                    "Requests delivered by this transport");
    request_bytes_ = &metrics.GetCounter("obiwan_transport_request_bytes_total",
                                         labels, "Request payload bytes");
    reply_bytes_ = &metrics.GetCounter("obiwan_transport_reply_bytes_total",
                                       labels, "Reply payload bytes");
    failures_ = &metrics.GetCounter("obiwan_transport_failures_total", labels,
                                    "Requests that failed to deliver or serve");
    timeouts_ = &metrics.GetCounter("obiwan_transport_timeouts_total", labels,
                                    "Requests that failed with an expired deadline");
    connects_ = &metrics.GetCounter("obiwan_transport_connects_total", labels,
                                    "Physical connections established");
    pool_hits_ = &metrics.GetCounter("obiwan_transport_pool_hits_total", labels,
                                     "Requests served on a pooled connection");
  }

  void OnRequest(std::size_t bytes) {
    requests_->Inc();
    request_bytes_->Inc(bytes);
  }
  void OnReply(std::size_t bytes) { reply_bytes_->Inc(bytes); }
  void OnFailure(const Status& status) {
    failures_->Inc();
    if (status.code() == StatusCode::kTimeout) timeouts_->Inc();
  }
  void OnConnect() { connects_->Inc(); }
  void OnPoolHit() { pool_hits_->Inc(); }

  // Traffic since construction (or the last Reset), as the legacy struct.
  // Saturating, so a registry-wide Reset() between baselines reads as zero
  // rather than wrapping.
  TrafficStats stats() const {
    auto since = [](const Counter* c, std::uint64_t base) {
      const std::uint64_t v = c->Value();
      return v > base ? v - base : 0;
    };
    return TrafficStats{since(requests_, baseline_.requests),
                        since(request_bytes_, baseline_.request_bytes),
                        since(reply_bytes_, baseline_.reply_bytes),
                        since(failures_, baseline_.failures),
                        since(timeouts_, baseline_.timeouts),
                        since(connects_, baseline_.connects),
                        since(pool_hits_, baseline_.pool_hits)};
  }

  // Rebaseline the view; the registry counters stay monotonic.
  void Reset() {
    baseline_ = TrafficStats{requests_->Value(),   request_bytes_->Value(),
                             reply_bytes_->Value(), failures_->Value(),
                             timeouts_->Value(),    connects_->Value(),
                             pool_hits_->Value()};
  }

 private:
  Counter* requests_;
  Counter* request_bytes_;
  Counter* reply_bytes_;
  Counter* failures_;
  Counter* timeouts_;
  Counter* connects_;
  Counter* pool_hits_;
  TrafficStats baseline_;
};

// One site's view of a network: it can serve requests at its own address and
// issue requests to other addresses.
class Transport {
 public:
  virtual ~Transport() = default;

  // Synchronous round trip with default options (the transport's configured
  // default deadline applies).
  Result<Bytes> Request(const Address& to, BytesView request) {
    return Request(to, request, CallOptions{});
  }

  // Synchronous round trip: deliver `request` to `to`, return its reply.
  // When the effective deadline (options or transport default) is positive,
  // the call fails with kTimeout instead of blocking past it.
  virtual Result<Bytes> Request(const Address& to, BytesView request,
                                const CallOptions& options) = 0;

  // Start serving inbound requests with `handler`. The handler must outlive
  // the transport (or a subsequent StopServing call).
  virtual Status Serve(MessageHandler* handler) = 0;

  virtual void StopServing() = 0;

  // Address other endpoints should use to reach this transport.
  virtual Address LocalAddress() const = 0;

  // Deadline applied when CallOptions::deadline is 0. kNoDeadline (the base
  // default) preserves unbounded waits; TcpTransport installs a finite
  // default because a real socket must never hang forever. Virtual so
  // decorators (retry, compression) can forward to the transport that
  // actually enforces it. Sites configure this via Site::SetRequestDeadline.
  virtual void SetDefaultDeadline(Nanos deadline) {
    default_deadline_.store(deadline, std::memory_order_relaxed);
  }
  virtual Nanos default_deadline() const {
    return default_deadline_.load(std::memory_order_relaxed);
  }

 protected:
  // Resolve per-call options against the configured default.
  Nanos EffectiveDeadline(const CallOptions& options) const {
    return options.deadline == 0 ? default_deadline() : options.deadline;
  }

 private:
  std::atomic<Nanos> default_deadline_{kNoDeadline};
};

}  // namespace obiwan::net
