// Transport abstraction.
//
// OBIWAN's RMI substrate (src/rmi) is written against this synchronous
// request/reply interface. Three implementations exist:
//   - LoopbackNetwork: zero-cost in-process delivery, for unit tests and for
//     measuring pure CPU overheads (marshalling, proxy bookkeeping).
//   - SimNetwork: in-process delivery that charges latency/bandwidth against a
//     virtual clock and supports disconnection injection — the calibrated
//     stand-in for the paper's 10 Mbit/s LAN and for mobile links (DESIGN.md,
//     substitutions 2 and 5).
//   - TcpTransport: real sockets, for deployment and cross-process tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/status.h"

namespace obiwan::net {

// Logical endpoint address. Loopback/sim networks use opaque names
// (e.g. "site-a"); the TCP transport uses "host:port".
using Address = std::string;

// Receives inbound requests. A site's RMI dispatcher implements this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  // Handle one request and produce the reply payload. Returning a non-ok
  // status sends a transport-level error back to the caller (used for
  // "no such object"-class failures detected before dispatch).
  virtual Result<Bytes> HandleRequest(const Address& from, BytesView request) = 0;
};

// Aggregate traffic counters, used by benches to report bytes on the wire.
struct TrafficStats {
  std::uint64_t requests = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t reply_bytes = 0;
  std::uint64_t failures = 0;
};

// Registry-backed traffic accounting shared by the three transports. Each
// network/transport instance owns one; the counters live in the metrics
// registry (labels: transport kind + a per-instance sequence number, so two
// networks in one process never share a series), and the legacy
// TrafficStats accessor is a view computed from the same counters — there is
// no parallel bookkeeping to drift.
class TrafficTelemetry {
 public:
  explicit TrafficTelemetry(std::string_view transport_kind,
                            MetricsRegistry& metrics = MetricsRegistry::Default()) {
    MetricLabels labels{
        {"transport", std::string(transport_kind)},
        {"inst", std::to_string(MetricsRegistry::NextInstance())}};
    requests_ = &metrics.GetCounter("obiwan_transport_requests_total", labels,
                                    "Requests delivered by this transport");
    request_bytes_ = &metrics.GetCounter("obiwan_transport_request_bytes_total",
                                         labels, "Request payload bytes");
    reply_bytes_ = &metrics.GetCounter("obiwan_transport_reply_bytes_total",
                                       labels, "Reply payload bytes");
    failures_ = &metrics.GetCounter("obiwan_transport_failures_total", labels,
                                    "Requests that failed to deliver or serve");
  }

  void OnRequest(std::size_t bytes) {
    requests_->Inc();
    request_bytes_->Inc(bytes);
  }
  void OnReply(std::size_t bytes) { reply_bytes_->Inc(bytes); }
  void OnFailure() { failures_->Inc(); }

  // Traffic since construction (or the last Reset), as the legacy struct.
  // Saturating, so a registry-wide Reset() between baselines reads as zero
  // rather than wrapping.
  TrafficStats stats() const {
    auto since = [](const Counter* c, std::uint64_t base) {
      const std::uint64_t v = c->Value();
      return v > base ? v - base : 0;
    };
    return TrafficStats{since(requests_, baseline_.requests),
                        since(request_bytes_, baseline_.request_bytes),
                        since(reply_bytes_, baseline_.reply_bytes),
                        since(failures_, baseline_.failures)};
  }

  // Rebaseline the view; the registry counters stay monotonic.
  void Reset() {
    baseline_ = TrafficStats{requests_->Value(), request_bytes_->Value(),
                             reply_bytes_->Value(), failures_->Value()};
  }

 private:
  Counter* requests_;
  Counter* request_bytes_;
  Counter* reply_bytes_;
  Counter* failures_;
  TrafficStats baseline_;
};

// One site's view of a network: it can serve requests at its own address and
// issue requests to other addresses.
class Transport {
 public:
  virtual ~Transport() = default;

  // Synchronous round trip: deliver `request` to `to`, return its reply.
  virtual Result<Bytes> Request(const Address& to, BytesView request) = 0;

  // Start serving inbound requests with `handler`. The handler must outlive
  // the transport (or a subsequent StopServing call).
  virtual Status Serve(MessageHandler* handler) = 0;

  virtual void StopServing() = 0;

  // Address other endpoints should use to reach this transport.
  virtual Address LocalAddress() const = 0;
};

}  // namespace obiwan::net
